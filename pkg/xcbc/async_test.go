package xcbc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"xcbc/internal/cluster"
)

func TestStartAsyncLifecycle(t *testing.T) {
	h, err := NewXCBC(WithCluster("littlefe"), WithParallelism(2)).Start(context.Background())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if h.Hardware() == nil || h.Hardware().Name != "LittleFe" {
		t.Fatalf("Hardware = %+v", h.Hardware())
	}
	d, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if h.Status() != StateReady {
		t.Fatalf("status = %v, want ready", h.Status())
	}
	if got, ok := h.Deployment(); !ok || got != d {
		t.Fatalf("Deployment() = %v, %v", got, ok)
	}
	if d.Scheduler() != "torque" || d.PackagesInstalled() == 0 {
		t.Fatalf("deployment = %s/%d", d.Scheduler(), d.PackagesInstalled())
	}
	if len(d.Quarantined()) != 0 {
		t.Fatalf("clean build quarantined %v", d.Quarantined())
	}

	// The journal replays the whole build with monotonically increasing,
	// cursor-resumable sequence numbers.
	evs, next := h.Events(0)
	if len(evs) == 0 || next != len(evs) {
		t.Fatalf("events = %d, next %d", len(evs), next)
	}
	stages := map[string]int{}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		stages[ev.Stage]++
	}
	if stages["frontend"] != 1 || stages["compute"] != 5 || stages["wave"] != 3 {
		t.Errorf("stages = %v", stages)
	}
	if tail, next2 := h.Events(next); len(tail) != 0 || next2 != next {
		t.Errorf("tail read = %d events", len(tail))
	}
}

func TestStartValidatesSynchronously(t *testing.T) {
	cases := []struct {
		name string
		b    Builder
		want error
	}{
		{"unknown cluster", NewXCBC(WithCluster("deep-thought")), ErrUnknownCluster},
		{"unknown scheduler", NewXCBC(WithScheduler("loadleveler")), ErrUnknownScheduler},
		{"diskless", NewXCBC(WithCluster("littlefe-original")), ErrDiskless},
		{"negative parallelism", NewXCBC(WithParallelism(-1)), nil},
		{"negative retries", NewXCBC(WithRetries(-3)), nil},
	}
	for _, tc := range cases {
		h, err := tc.b.Start(context.Background())
		if err == nil {
			t.Errorf("%s: Start succeeded (handle %v)", tc.name, h.Status())
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestCancelBetweenWaves pins down the cancellation contract: cancelling an
// in-flight build stops it at the next wave boundary — nodes of committed
// waves are fully installed, nodes of never-started waves are untouched,
// and nothing is half-kickstarted. Run under -race.
func TestCancelBetweenWaves(t *testing.T) {
	entered := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	h, err := NewXCBC(
		WithCluster("littlefe"),
		WithParallelism(2),
		WithInstallHook(func(node string, attempt int) error {
			if node == "compute-0-3" { // first member of wave 2
				once.Do(func() { close(entered) })
				<-gate
			}
			return nil
		}),
	).Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if got := h.Status(); got != StateBuilding {
		t.Fatalf("status mid-build = %v, want building", got)
	}
	h.Cancel()
	close(gate) // wave 2 finishes its kickstarts, then the build observes ctx
	if _, err := h.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait after cancel = %v, want context.Canceled", err)
	}
	if h.Status() != StateCancelled || !errors.Is(h.Err(), context.Canceled) {
		t.Fatalf("status %v err %v", h.Status(), h.Err())
	}

	// Waves 1 and 2 (computes 1-4) committed; wave 3 (compute 5) untouched.
	hw := h.Hardware()
	for _, name := range []string{"compute-0-1", "compute-0-2", "compute-0-3", "compute-0-4"} {
		n, _ := hw.Lookup(name)
		if n.OS() == "" || n.Packages().Len() == 0 {
			t.Errorf("committed node %s not fully installed (os=%q pkgs=%d)", name, n.OS(), n.Packages().Len())
		}
	}
	n, _ := hw.Lookup("compute-0-5")
	if n.OS() != "" || n.Packages().Len() != 0 {
		t.Errorf("pending node touched: os=%q pkgs=%d", n.OS(), n.Packages().Len())
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	attempts := map[string]int{}
	var mu sync.Mutex
	d, err := NewXCBC(
		WithCluster("littlefe"),
		WithParallelism(4),
		WithRetries(2),
		WithInstallHook(func(node string, attempt int) error {
			mu.Lock()
			defer mu.Unlock()
			attempts[node]++
			if node == "compute-0-2" && attempt == 1 {
				return errors.New("transient PXE fault")
			}
			return nil
		}),
	).Deploy(context.Background())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if len(d.Quarantined()) != 0 {
		t.Fatalf("recovered node still quarantined: %v", d.Quarantined())
	}
	if attempts["compute-0-2"] != 2 {
		t.Errorf("flaky node attempts = %d, want 2", attempts["compute-0-2"])
	}
}

func TestQuarantineKeepsBuildAlive(t *testing.T) {
	var events []Event
	var mu sync.Mutex
	d, err := NewXCBC(
		WithCluster("littlefe"),
		WithParallelism(2),
		WithRetries(1),
		WithProgress(func(ev Event) { mu.Lock(); events = append(events, ev); mu.Unlock() }),
		WithInstallHook(func(node string, attempt int) error {
			if node == "compute-0-4" {
				return errors.New("dead DIMM")
			}
			return nil
		}),
	).Deploy(context.Background())
	if err != nil {
		t.Fatalf("one bad node aborted the build: %v", err)
	}
	if q := d.Quarantined(); len(q) != 1 || q[0] != "compute-0-4" {
		t.Fatalf("quarantined = %v", q)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawQuarantine bool
	for _, ev := range events {
		if ev.Stage == "quarantine" && ev.Node == "compute-0-4" {
			sawQuarantine = true
		}
	}
	if !sawQuarantine {
		t.Errorf("no quarantine event in %d events", len(events))
	}
}

// TestWaveParallelismShrinksInstallDuration is the paper's point: waves
// bounded by frontend capacity approach hardware-speed builds. At width 8
// the 8 computes of a resized LittleFe install in one wave.
func TestWaveParallelismShrinksInstallDuration(t *testing.T) {
	build := func(parallelism int) time.Duration {
		t.Helper()
		d, err := NewXCBC(WithCluster("littlefe"), WithNodeCount(8),
			WithParallelism(parallelism)).Deploy(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return d.InstallDuration()
	}
	seq := build(1)
	wave := build(8)
	if wave >= seq {
		t.Fatalf("wave build %v not faster than sequential %v", wave, seq)
	}
	if 4*wave > seq {
		t.Errorf("wave build %v > 1/4 of sequential %v", wave, seq)
	}
}

// TestDeployWaitsForCancelledBuildToStop pins the sync contract: when the
// caller's ctx is cancelled, Deploy returns only after the build goroutine
// has actually stopped — so the caller immediately regains exclusive use
// of shared engines and hardware. Run under -race: without the wait, the
// node-state reads below race the still-running build.
func TestDeployWaitsForCancelledBuildToStop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hw := cluster.NewLittleFe()
	_, err := NewXCBC(
		WithHardware(hw),
		WithParallelism(2),
		WithInstallHook(func(node string, attempt int) error {
			if node == "compute-0-3" { // first member of wave 2
				cancel()
			}
			return nil
		}),
	).Deploy(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Deploy = %v, want context.Canceled", err)
	}
	// Deploy returned after the in-flight wave committed and the build
	// observed cancellation: computes 1-4 installed, compute 5 untouched.
	for i, n := range hw.Computes {
		if i < 4 && n.OS() == "" {
			t.Errorf("committed node %s not installed", n.Name)
		}
		if i == 4 && n.OS() != "" {
			t.Errorf("pending node %s was touched", n.Name)
		}
	}
}

func TestHandleWatchStreamsToTerminal(t *testing.T) {
	h, err := NewXCBC(WithCluster("littlefe"), WithParallelism(2)).Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int
	st := h.Watch(context.Background(), func(ev Event) { seqs = append(seqs, ev.Seq) })
	if st != StateReady {
		t.Fatalf("Watch returned %v, want ready", st)
	}
	total, _ := h.Events(0)
	if len(seqs) != len(total) {
		t.Fatalf("Watch delivered %d events, journal holds %d", len(seqs), len(total))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("out-of-order delivery: seqs = %v", seqs)
		}
	}
}

func TestDeployStaysSynchronous(t *testing.T) {
	// The seed API: Deploy blocks and returns the finished deployment.
	d, err := NewXCBC(WithCluster("littlefe")).Deploy(context.Background())
	if err != nil || d == nil {
		t.Fatalf("Deploy = %v, %v", d, err)
	}
	if d.InstallDuration() <= 0 {
		t.Error("no install duration")
	}
}
