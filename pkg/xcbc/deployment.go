package xcbc

import (
	"fmt"
	"sync"
	"time"

	"xcbc/internal/cluster"
	"xcbc/internal/core"
	"xcbc/internal/depsolve"
	"xcbc/internal/modules"
	"xcbc/internal/monitor"
	"xcbc/internal/power"
	"xcbc/internal/provision"
	"xcbc/internal/repo"
	"xcbc/internal/sched"
	"xcbc/internal/sim"
)

// Deployment is a running cluster produced by a Builder: the hardware plus
// every subsystem. The methods below cover the paper's day-2 workflows;
// the subsystem accessors hand out the underlying managers for anything
// beyond them. For concurrent (HTTP-reachable) day-2 use, Open the
// Cluster resource instead of calling these directly.
type Deployment struct {
	core *core.Deployment

	opsOnce sync.Once
	ops     *core.Operations
}

// Open returns the Cluster resource for this deployment: the
// concurrency-safe day-2 surface (jobs, metrics, validation, updates).
// Every Open on the same Deployment shares one serialization point, so
// clusters opened twice stay mutually safe.
func (d *Deployment) Open() *Cluster {
	d.opsOnce.Do(func() { d.ops = core.NewOperations(d.core) })
	return &Cluster{d: d, ops: d.ops}
}

// Exec runs one scheduler-native command line (qsub/qstat/qdel,
// sbatch/squeue/scancel, module avail) against the deployment — the
// paper's XSEDE command-compatibility claim.
func (d *Deployment) Exec(line string) (string, error) { return d.core.Exec(line) }

// Scheduler returns the active job manager name, "" if none.
func (d *Deployment) Scheduler() string { return d.core.Scheduler }

// PackagesInstalled counts packages placed across all nodes at build time.
func (d *Deployment) PackagesInstalled() int { return d.core.PackagesInstalled }

// InstallDuration is the simulated time the initial build consumed.
func (d *Deployment) InstallDuration() time.Duration { return d.core.InstallDuration }

// Quarantined lists compute nodes that exhausted their install retries and
// were set aside during the build; they remain in the hardware description
// but carry no OS. Empty on a clean build.
func (d *Deployment) Quarantined() []string {
	return append([]string(nil), d.core.Quarantined...)
}

// InstallLog returns the provisioning log, empty on the vendor path.
func (d *Deployment) InstallLog() []string {
	if d.core.Installer == nil {
		return nil
	}
	return append([]string(nil), d.core.Installer.Log...)
}

// Hardware returns the deployed cluster's hardware description.
func (d *Deployment) Hardware() *cluster.Cluster { return d.core.Cluster }

// Engine returns the simulation engine driving the deployment.
func (d *Deployment) Engine() *sim.Engine { return d.core.Engine }

// Batch returns the batch system manager, nil if no scheduler is
// installed.
func (d *Deployment) Batch() *sched.Manager { return d.core.Batch }

// Modules returns the environment-modules system.
func (d *Deployment) Modules() *modules.System { return d.core.Modules }

// Monitor returns the Ganglia-style monitoring aggregator.
func (d *Deployment) Monitor() *monitor.Aggregator { return d.core.Monitor }

// PowerManager returns the node power manager.
func (d *Deployment) PowerManager() *power.Manager { return d.core.Power }

// Repos returns the deployment's client-side repository configuration
// (its yum.repos.d); safe for concurrent use.
func (d *Deployment) Repos() *repo.Set { return d.core.Repos }

// Repo returns a configured repository by ID (for example XNITRepoID
// after XNIT adoption), or nil.
func (d *Deployment) Repo(id string) *repo.Repository { return d.core.Repos.Lookup(id) }

// Installer returns the Rocks provisioning driver, nil on the vendor
// path.
func (d *Deployment) Installer() *provision.Installer { return d.core.Installer }

// AttachInstaller hands a deployment the installer that provisioned its
// hardware, for setups assembled step by step (training walkthroughs).
func (d *Deployment) AttachInstaller(ins *provision.Installer) { d.core.Installer = ins }

// InstallProfile installs a curated XNIT package profile cluster-wide and
// returns the number of package installs performed.
func (d *Deployment) InstallProfile(name string) (int, error) {
	if err := checkProfiles([]string{name}); err != nil {
		return 0, err
	}
	n, err := d.core.InstallProfile(name)
	return n, d.translateInstall(err)
}

// InstallPackages resolves and installs the named packages (with
// dependencies) on every node, returning the number of installs.
func (d *Deployment) InstallPackages(names ...string) (int, error) {
	n, err := d.core.InstallEverywhere(names...)
	return n, d.translateInstall(err)
}

func (d *Deployment) translateInstall(err error) error {
	if err == nil {
		return nil
	}
	if len(d.core.Repos.Enabled()) == 0 {
		return fmt.Errorf("%w (adopt with NewXNIT or add one to Repos()): %w", ErrNoRepos, err)
	}
	return translate(err)
}

// ChangeScheduler swaps the batch system in place — the Limulus workflow
// the paper highlights. The queue must be drained first.
func (d *Deployment) ChangeScheduler(to string) error {
	if err := checkScheduler(to); err != nil {
		return err
	}
	if d.core.Batch != nil {
		if running := len(d.core.Batch.Running()); running > 0 {
			return fmt.Errorf("%w: %d job(s); drain the queue before changing schedulers",
				ErrJobsRunning, running)
		}
	}
	return translate(d.core.ChangeScheduler(to))
}

// Compat summarizes an XSEDE compatibility check of the frontend against
// the Stampede reference.
type Compat struct {
	Passed int
	Total  int
	Score  float64 // Passed/Total in [0,1]
	Text   string  // human-readable report
}

// Compat runs the compatibility check.
func (d *Deployment) Compat() (Compat, error) {
	rep, err := d.core.CompatReport()
	if err != nil {
		return Compat{}, translate(err)
	}
	return Compat{Passed: rep.Passed(), Total: rep.Total(), Score: rep.Score(),
		Text: rep.Summary()}, nil
}

// UpdatePolicy selects how an update check treats available updates.
type UpdatePolicy int

// Update policies, mirroring the paper's §3 guidance.
const (
	// UpdateNotify reports updates for administrator review (the paper's
	// "more prudent action").
	UpdateNotify UpdatePolicy = iota
	// UpdateAutoApply applies all available updates immediately.
	UpdateAutoApply
	// UpdateSecurityOnly auto-applies security updates and reports the
	// rest.
	UpdateSecurityOnly
)

func (p UpdatePolicy) String() string {
	switch p {
	case UpdateNotify:
		return "notify"
	case UpdateAutoApply:
		return "auto-apply"
	case UpdateSecurityOnly:
		return "security-only"
	}
	return "?"
}

func (p UpdatePolicy) internal() depsolve.UpdatePolicy {
	switch p {
	case UpdateAutoApply:
		return depsolve.PolicyAutoApply
	case UpdateSecurityOnly:
		return depsolve.PolicySecurityOnly
	}
	return depsolve.PolicyNotify
}

// NodeUpdates is the outcome of an update check on one node.
type NodeUpdates struct {
	Pending int    // updates held for review
	Applied int    // updates applied under the policy
	Summary string // the report body the paper suggests sites mail out
}

// UpdateCheck is a cluster-wide update check result, keyed by node name.
type UpdateCheck struct {
	Policy UpdatePolicy
	ByNode map[string]NodeUpdates
}

// PendingTotal sums pending updates across all nodes.
func (u UpdateCheck) PendingTotal() int {
	n := 0
	for _, nu := range u.ByNode {
		n += nu.Pending
	}
	return n
}

// AppliedTotal sums applied updates across all nodes.
func (u UpdateCheck) AppliedTotal() int {
	n := 0
	for _, nu := range u.ByNode {
		n += nu.Applied
	}
	return n
}

// UpdateCheck performs the paper's periodic update check on every node
// under the given policy.
func (d *Deployment) UpdateCheck(policy UpdatePolicy, now time.Time) UpdateCheck {
	notes := d.core.RunUpdateCheckEverywhere(policy.internal(), now)
	out := UpdateCheck{Policy: policy, ByNode: make(map[string]NodeUpdates, len(notes))}
	for node, n := range notes { //detlint:ordered map-to-map rebuild under distinct keys; Summary is pure
		out.ByNode[node] = NodeUpdates{Pending: len(n.Pending), Applied: len(n.Applied),
			Summary: n.Summary()}
	}
	return out
}
