package xcbc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestClusterLifecycle walks the full day-2 arc through the SDK: deploy
// asynchronously, fail to open before ready, open, submit jobs, watch them
// through metrics and virtual time, cancel, validate, and check updates.
func TestClusterLifecycle(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	h, err := NewXCBC(
		WithCluster("littlefe"),
		WithScheduler("torque"),
		WithParallelism(2),
		WithInstallHook(func(string, int) error { <-gate; return nil }),
	).Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Day-2 surface is unreachable while the build is in flight.
	if _, err := h.Cluster(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Cluster() mid-build = %v, want ErrNotReady", err)
	}

	release()
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	cl, err := h.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if cl.Name() != "LittleFe" || cl.Scheduler() != "torque" {
		t.Fatalf("cluster = %s/%s", cl.Name(), cl.Scheduler())
	}

	// Submit: a job that fits starts immediately; a cluster-sized one
	// queues behind it.
	small, err := cl.SubmitJob(JobSpec{Name: "relax", User: "alice", Cores: 2,
		Walltime: time.Hour, Runtime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if small.ID != 1 || small.State != JobRunning || len(small.Nodes) == 0 {
		t.Fatalf("small job = %+v", small)
	}
	big, err := cl.SubmitJob(JobSpec{Name: "assembly", User: "carol", Cores: 10,
		Walltime: 2 * time.Hour, Runtime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if big.State != JobQueued {
		t.Fatalf("big job state = %s, want queued", big.State)
	}
	if _, err := cl.SubmitJob(JobSpec{Cores: 0}); !errors.Is(err, ErrBadJob) {
		t.Fatalf("zero-core submit = %v, want ErrBadJob", err)
	}
	if _, err := cl.SubmitJob(JobSpec{Cores: 10000}); !errors.Is(err, ErrBadJob) {
		t.Fatalf("oversized submit = %v, want ErrBadJob", err)
	}

	// Metrics: an on-demand poll sees every powered-on node, and the busy
	// nodes carry load.
	m := cl.Metrics()
	if len(m.Nodes) != 6 {
		t.Fatalf("metrics hosts = %d, want 6 (frontend + 5 computes)", len(m.Nodes))
	}
	if m.ClusterLoad <= 0 {
		t.Fatalf("cluster load = %v, want > 0 while a job runs", m.ClusterLoad)
	}

	// Virtual time: 15 minutes is enough for the small job (10m runtime)
	// to finish and the big one to start, but not to finish its hour.
	cl.Advance(15 * time.Minute)
	done, ok := cl.Job(small.ID)
	if !ok || done.State != JobCompleted {
		t.Fatalf("small job after advance = %+v", done)
	}
	bigNow, _ := cl.Job(big.ID)
	if bigNow.State != JobRunning {
		t.Fatalf("big job after advance = %+v", bigNow)
	}

	// Cancel the running job; cancelling it again is unknown.
	if err := cl.CancelJob(big.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.CancelJob(big.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("double cancel = %v, want ErrUnknownJob", err)
	}
	jobs := cl.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}

	// Validate: the model must be sane and the measured smoke solve must
	// pass the HPL residual check on real arithmetic.
	v, err := cl.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.N <= 0 || v.RmaxGF <= 0 || v.RmaxGF >= v.RpeakGF || v.Efficiency <= 0 || v.Efficiency >= 1 {
		t.Fatalf("validation model = %+v", v)
	}
	if !v.SmokeRun || !v.SmokePass || v.SmokeN != 128 {
		t.Fatalf("validation smoke = %+v", v)
	}
	modelOnly, err := cl.Validate(WithSmokeSize(0))
	if err != nil {
		t.Fatal(err)
	}
	if modelOnly.SmokeRun {
		t.Fatal("WithSmokeSize(0) still ran the measured solve")
	}

	// Updates: every node gets a report (no repos attached on the bare
	// XCBC path, so nothing is pending — the shape still holds).
	u := cl.CheckUpdates(UpdateNotify, time.Date(2015, 9, 8, 12, 0, 0, 0, time.UTC))
	if len(u.ByNode) != 6 {
		t.Fatalf("update reports = %d nodes, want 6", len(u.ByNode))
	}
}

// TestClusterAlerts drives load above the default high-load threshold and
// watches the alert raise and clear.
func TestClusterAlerts(t *testing.T) {
	cl, err := NewXCBC(WithCluster("littlefe")).Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	job, err := cl.SubmitJob(JobSpec{Name: "saturate", User: "alice", Cores: 10,
		Walltime: time.Hour, Runtime: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics() // polls at full load: every compute is saturated
	if len(m.ActiveAlerts) == 0 {
		t.Fatalf("no alerts at cluster load %v", m.ClusterLoad)
	}
	if err := cl.CancelJob(job.ID); err != nil {
		t.Fatal(err)
	}
	cl.Advance(time.Minute)
	if m := cl.Metrics(); len(m.ActiveAlerts) != 0 {
		t.Fatalf("alerts still firing after cancel: %v", m.ActiveAlerts)
	}
	active, log := cl.Alerts()
	if len(active) != 0 {
		t.Fatalf("active = %v", active)
	}
	var raised, cleared bool
	for _, a := range log {
		if a.Rule == "high-load" && a.Firing {
			raised = true
		}
		if a.Rule == "high-load" && !a.Firing {
			cleared = true
		}
	}
	if !raised || !cleared {
		t.Fatalf("alert log missing raise/clear transitions: %+v", log)
	}
}

// TestVendorClusterNoScheduler proves batch operations on a scheduler-less
// vendor deployment fail with the sentinel instead of panicking.
func TestVendorClusterNoScheduler(t *testing.T) {
	cl, err := NewVendor(WithCluster("limulus")).Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SubmitJob(JobSpec{Cores: 1}); !errors.Is(err, ErrNoScheduler) {
		t.Fatalf("submit without scheduler = %v, want ErrNoScheduler", err)
	}
	if err := cl.CancelJob(1); !errors.Is(err, ErrNoScheduler) {
		t.Fatalf("cancel without scheduler = %v, want ErrNoScheduler", err)
	}
	if jobs := cl.Jobs(); len(jobs) != 0 {
		t.Fatalf("jobs without scheduler = %v", jobs)
	}
	// Monitoring and validation still work: they need no batch system.
	if m := cl.Metrics(); len(m.Nodes) == 0 {
		t.Fatal("no metrics on vendor cluster")
	}
}

// TestClusterConcurrentOps hammers one cluster from many goroutines —
// submissions, queries, metrics, virtual-time advances, and command
// execution all interleaved. Run with -race: this is the HTTP handler
// access pattern, and the shared engine underneath is unsynchronized
// without the Operations serialization.
func TestClusterConcurrentOps(t *testing.T) {
	d, err := NewXCBC(WithCluster("littlefe"), WithParallelism(4)).Deploy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Two Cluster values over one Deployment share the serialization.
	cl1 := d.Open()
	cl2 := d.Open()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, cl := range []*Cluster{cl1, cl2} {
		wg.Add(1)
		go func(i int, cl *Cluster) {
			defer wg.Done()
			for n := 0; n < 30; n++ {
				job, err := cl.SubmitJob(JobSpec{Name: "spin", User: "u", Cores: 1 + n%2,
					Walltime: time.Hour, Runtime: 5 * time.Minute})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if n%3 == 0 {
					_ = cl.CancelJob(job.ID)
				}
			}
		}(i, cl)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 30; n++ {
			cl1.Advance(10 * time.Minute)
		}
	}()
	for _, cl := range []*Cluster{cl1, cl2} {
		wg.Add(1)
		go func(cl *Cluster) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cl.Jobs()
				cl.Metrics()
				cl.Alerts()
				cl.Now()
				_, _ = cl.Exec("qstat")
			}
		}(cl)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("goroutines did not finish")
	}
	// 60 jobs were submitted; all must be accounted for.
	if got := len(cl1.Jobs()); got != 60 {
		t.Fatalf("jobs accounted = %d, want 60", got)
	}
}
