package xcbc

import (
	"errors"

	"xcbc/internal/core"
	"xcbc/internal/depsolve"
	"xcbc/internal/provision"
	"xcbc/internal/rocks"
	"xcbc/internal/sched"
)

// Sentinel errors wrapped by SDK operations; test with errors.Is.
var (
	// ErrUnknownCluster reports a cluster name absent from Clusters().
	ErrUnknownCluster = errors.New("xcbc: unknown cluster")
	// ErrUnknownScheduler reports a scheduler name absent from Schedulers().
	ErrUnknownScheduler = errors.New("xcbc: unknown scheduler")
	// ErrUnknownRoll reports an optional roll name absent from Rolls().
	ErrUnknownRoll = errors.New("xcbc: unknown optional roll")
	// ErrUnknownProfile reports an XNIT profile name absent from Profiles().
	ErrUnknownProfile = errors.New("xcbc: unknown package profile")
	// ErrUnknownPowerPolicy reports a power policy name that is not one of
	// the PowerPolicy constants.
	ErrUnknownPowerPolicy = errors.New("xcbc: unknown power policy")
	// ErrBadNodeCount reports a non-positive WithNodeCount argument.
	ErrBadNodeCount = errors.New("xcbc: node count must be positive")
	// ErrBadOption reports an out-of-range option argument, such as a
	// negative WithParallelism or WithRetries value.
	ErrBadOption = errors.New("xcbc: bad option value")
	// ErrDiskless reports a Rocks provisioning attempt against a diskless
	// node (the constraint that forces the Limulus onto the XNIT path).
	ErrDiskless = errors.New("xcbc: Rocks cannot provision diskless nodes")
	// ErrDepCycle reports a cycle in the kickstart include-graph.
	ErrDepCycle = errors.New("xcbc: kickstart graph cycle")
	// ErrUnresolvable reports package requirements that no enabled
	// repository satisfies.
	ErrUnresolvable = errors.New("xcbc: unresolvable dependencies")
	// ErrNoRepos reports an install attempted before any repository is
	// configured (run the XNIT builder or add a repository first).
	ErrNoRepos = errors.New("xcbc: no enabled repositories")
	// ErrJobsRunning reports a scheduler change attempted while jobs are
	// still running; drain the queue first.
	ErrJobsRunning = errors.New("xcbc: jobs still running")
	// ErrNilDeployment reports NewXNIT called with a nil existing
	// deployment.
	ErrNilDeployment = errors.New("xcbc: nil deployment")
	// ErrNotReady reports a day-2 operation (Handle.Cluster) on a
	// deployment that has not reached StateReady.
	ErrNotReady = errors.New("xcbc: deployment not ready")
	// ErrNoScheduler reports a batch operation on a cluster deployed
	// without a batch system (the vendor path with no scheduler).
	ErrNoScheduler = errors.New("xcbc: no batch system installed")
	// ErrUnknownJob reports a job ID that is neither queued nor running.
	ErrUnknownJob = errors.New("xcbc: unknown job")
	// ErrBadJob reports a job submission that can never run (no cores, or
	// more cores than the cluster has).
	ErrBadJob = errors.New("xcbc: bad job request")
)

// translate maps internal-layer failures onto the SDK's sentinel errors so
// callers never need to import internal packages to branch on causes. The
// original error is preserved in the chain.
func translate(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, provision.ErrDiskless):
		return errors.Join(ErrDiskless, err)
	case errors.Is(err, rocks.ErrCycle):
		return errors.Join(ErrDepCycle, err)
	case errors.Is(err, core.ErrNoScheduler):
		return errors.Join(ErrNoScheduler, err)
	case errors.Is(err, sched.ErrUnknownJob):
		return errors.Join(ErrUnknownJob, err)
	case errors.Is(err, sched.ErrBadJob):
		return errors.Join(ErrBadJob, err)
	}
	var unres *depsolve.UnresolvableError
	if errors.As(err, &unres) {
		return errors.Join(ErrUnresolvable, err)
	}
	return err
}
