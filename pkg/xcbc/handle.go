package xcbc

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"xcbc/internal/cluster"
	"xcbc/internal/orchestrator"
)

// DeployState is a deployment's position in its lifecycle:
//
//	pending → building → ready | failed | cancelled
//
// Pending and building are transient; the rest are terminal.
type DeployState string

// Deployment lifecycle states.
const (
	StatePending   DeployState = "pending"
	StateBuilding  DeployState = "building"
	StateReady     DeployState = "ready"
	StateFailed    DeployState = "failed"
	StateCancelled DeployState = "cancelled"
)

// Terminal reports whether the state is final.
func (s DeployState) Terminal() bool {
	return s == StateReady || s == StateFailed || s == StateCancelled
}

func stateOf(s orchestrator.State) DeployState {
	switch s {
	case orchestrator.StatePending:
		return StatePending
	case orchestrator.StateBuilding:
		return StateBuilding
	case orchestrator.StateReady:
		return StateReady
	case orchestrator.StateFailed:
		return StateFailed
	case orchestrator.StateCancelled:
		return StateCancelled
	}
	return DeployState(fmt.Sprintf("state(%d)", s))
}

// defaultPool is the orchestrator every Start shares: a bounded worker pool
// so a burst of deployment requests builds at most poolWorkers clusters
// concurrently while the rest queue in StatePending.
var (
	poolOnce sync.Once
	pool     *orchestrator.Orchestrator
)

func defaultPool() *orchestrator.Orchestrator {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		if workers > 8 {
			workers = 8
		}
		pool = orchestrator.New(workers)
	})
	return pool
}

// Handle tracks one asynchronous deployment started with Builder.Start. All
// methods are safe for concurrent use.
type Handle struct {
	job *orchestrator.Job
	hw  *cluster.Cluster
}

// Status returns the deployment's current lifecycle state.
func (h *Handle) Status() DeployState { return stateOf(h.job.State()) }

// Hardware returns the hardware description the build targets, available
// from the moment Start returns (before the build finishes).
func (h *Handle) Hardware() *cluster.Cluster { return h.hw }

// Wait blocks until the deployment reaches a terminal state or ctx is done.
// On StateReady it returns the deployment; on failure or cancellation it
// returns the build's error. A ctx expiring here only abandons the wait —
// use Cancel to stop the build itself.
func (h *Handle) Wait(ctx context.Context) (*Deployment, error) {
	result, err := h.job.Wait(ctx)
	if err != nil {
		return nil, err
	}
	d, _ := result.(*Deployment)
	return d, nil
}

// Deployment returns the finished deployment and true once the handle is
// StateReady, otherwise nil and false. It never blocks.
func (h *Handle) Deployment() (*Deployment, bool) {
	result, ok := h.job.Result()
	if !ok {
		return nil, false
	}
	d, _ := result.(*Deployment)
	return d, true
}

// Cluster returns the live Cluster resource — the concurrency-safe day-2
// surface (jobs, metrics, validation, updates) — once the deployment is
// StateReady. Before that it fails with ErrNotReady (wrapping the current
// state in the message), so callers can poll or Wait first. It never
// blocks.
func (h *Handle) Cluster() (*Cluster, error) {
	d, ok := h.Deployment()
	if !ok {
		return nil, fmt.Errorf("%w: deployment is %s", ErrNotReady, h.Status())
	}
	return d.Open(), nil
}

// Err returns the deployment's terminal error: nil while in flight and on
// success, the build error once failed, a context error once cancelled.
func (h *Handle) Err() error { return h.job.Err() }

// Cancel asks the build to stop. A pending build never starts; a running
// build stops cleanly at its next wave boundary, leaving already-installed
// nodes installed and pending nodes untouched. Cancel after a terminal
// state is a no-op.
func (h *Handle) Cancel() { h.job.Cancel() }

// Done returns a channel closed when the deployment reaches a terminal
// state.
func (h *Handle) Done() <-chan struct{} { return h.job.Done() }

// Events returns journaled progress events with Seq >= cursor, plus the
// cursor to pass on the next call. The journal is a capped ring: a reader
// that falls more than the journal capacity behind resumes at the oldest
// retained event.
func (h *Handle) Events(cursor int) ([]Event, int) {
	evs, next := h.job.Events(cursor)
	out := make([]Event, len(evs))
	for i, ev := range evs {
		out[i] = Event{Seq: ev.Seq, Stage: ev.Stage, Node: ev.Node,
			Message: ev.Message, Packages: ev.Packages, Elapsed: ev.Elapsed}
	}
	return out, next
}

// Subscribe registers for wake-ups after every journaled event and state
// change; the channel coalesces bursts. Call the returned function to
// unsubscribe.
func (h *Handle) Subscribe() (<-chan struct{}, func()) { return h.job.Subscribe() }

// Watch streams journal events to fn, in order from the start of the
// journal, until the deployment reaches a terminal state or ctx is done —
// including the events that raced the terminal transition, which a naive
// poll-then-check loop would drop. It returns the last state observed.
// fn runs on the caller's goroutine.
func (h *Handle) Watch(ctx context.Context, fn func(Event)) DeployState {
	wake, unsubscribe := h.Subscribe()
	defer unsubscribe()
	cursor := 0
	drain := func() {
		var evs []Event
		evs, cursor = h.Events(cursor)
		for _, ev := range evs {
			fn(ev)
		}
	}
	for {
		drain()
		if st := h.Status(); st.Terminal() {
			drain()
			return st
		}
		select {
		case <-wake:
		case <-h.job.Done():
		case <-ctx.Done():
			return h.Status()
		}
	}
}

// start submits fn on the shared pool and wraps the job in a Handle.
func start(ctx context.Context, name string, hw *cluster.Cluster,
	fn func(ctx context.Context, emit func(Event) int) (*Deployment, error)) *Handle {
	job := defaultPool().Submit(ctx, name, 0, func(jctx context.Context, emit func(orchestrator.Event) int) (any, error) {
		wrapped := func(ev Event) int {
			return emit(orchestrator.Event{Stage: ev.Stage, Node: ev.Node,
				Message: ev.Message, Packages: ev.Packages, Elapsed: ev.Elapsed})
		}
		return fn(jctx, wrapped)
	})
	return &Handle{job: job, hw: hw}
}
