package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xcbc/internal/repo"
	"xcbc/internal/rpm"
	"xcbc/pkg/xcbc"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		t.Fatal(err)
	}
	clock := func() time.Time { return time.Date(2015, 9, 8, 12, 0, 0, 0, time.UTC) }
	return New(Config{Repos: []*repo.Repository{xnit}, Clock: clock})
}

// do runs one request against the handler and decodes a JSON body into out
// (when out is non-nil).
func do(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func TestRouteStatusCodes(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/api/v1/healthz", "", 200},
		{"GET", "/api/v1/repos", "", 200},
		{"GET", "/api/v1/repos/xsede", "", 200},
		{"GET", "/api/v1/repos/nosuch", "", 404},
		{"GET", "/api/v1/repos/xsede/packages", "", 200},
		{"GET", "/api/v1/repos/xsede/packages?name=gcc", "", 200},
		{"GET", "/api/v1/repos/nosuch/packages", "", 404},
		{"POST", "/api/v1/depsolve", `{"install":["gromacs"]}`, 200},
		{"POST", "/api/v1/depsolve", `{"install":[]}`, 400},
		{"POST", "/api/v1/depsolve", `{"install":["libreoffice"]}`, 422},
		{"POST", "/api/v1/depsolve", `not json`, 400},
		{"GET", "/api/v1/depsolve", "", 405},
		{"DELETE", "/api/v1/repos", "", 405},
		{"PUT", "/api/v1/deployments", "", 405},
		{"GET", "/api/v1/deployments", "", 200},
		{"GET", "/api/v1/deployments/nosuch", "", 404},
		{"GET", "/api/v1/deployments/nosuch/events", "", 404},
		{"POST", "/api/v1/deployments/nosuch/events", "", 405},
		{"DELETE", "/api/v1/deployments/nosuch", "", 404},
		// Requests that cannot possibly build fail synchronously, before
		// any async job starts.
		{"POST", "/api/v1/deployments", `{"cluster":"atlantis"}`, 400},
		{"POST", "/api/v1/deployments", `{"cluster":"littlefe-original"}`, 422},
		{"POST", "/api/v1/deployments", `{"path":"teleport"}`, 400},
		{"POST", "/api/v1/deployments", `{"path":"xcbc","profiles":["bio"]}`, 400},
		{"POST", "/api/v1/deployments", `{"path":"xnit","rolls":["hpc"]}`, 400},
		{"POST", "/api/v1/deployments", `{"cluster":"limulus","path":"xnit","parallelism":4}`, 400},
		{"POST", "/api/v1/deployments", `{"cluster":"limulus","path":"xnit","retries":2}`, 400},
		{"POST", "/api/v1/deployments", `{"parallelism":-2}`, 400},
		{"POST", "/api/v1/deployments", `{"retries":-1}`, 400},
		{"GET", "/api/v2/repos", "", 404},
		{"GET", "/api/", "", 404},
		// Legacy Yum surface, preserved.
		{"GET", "/", "", 200},
		{"GET", "/xsede/repodata/repomd.json", "", 200},
		{"GET", "/nosuchrepo/repodata/repomd.json", "", 404},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path, tc.body, nil)
		if rec.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d (body %s)",
				tc.method, tc.path, rec.Code, tc.want, rec.Body.String())
		}
	}
}

func TestReposJSONShape(t *testing.T) {
	s := newTestServer(t)
	var list struct {
		Repos []repoInfo `json:"repos"`
	}
	do(t, s, "GET", "/api/v1/repos", "", &list)
	if len(list.Repos) != 1 {
		t.Fatalf("repos = %d, want 1", len(list.Repos))
	}
	r := list.Repos[0]
	if r.ID != "xsede" || !r.Enabled || r.Packages == 0 || r.Priority != xcbc.XNITPriority {
		t.Errorf("repo = %+v", r)
	}

	var one repoInfo
	do(t, s, "GET", "/api/v1/repos/xsede", "", &one)
	if one != r {
		t.Errorf("single = %+v, list entry = %+v", one, r)
	}
}

func TestRepoPackages(t *testing.T) {
	s := newTestServer(t)
	var all struct {
		Repo     string        `json:"repo"`
		Count    int           `json:"count"`
		Packages []packageInfo `json:"packages"`
	}
	do(t, s, "GET", "/api/v1/repos/xsede/packages", "", &all)
	if all.Repo != "xsede" || all.Count == 0 || all.Count != len(all.Packages) {
		t.Fatalf("packages = count %d, len %d", all.Count, len(all.Packages))
	}
	for _, p := range all.Packages[:5] {
		if p.NEVRA == "" || p.Name == "" || p.Arch == "" {
			t.Errorf("incomplete package record %+v", p)
		}
	}

	var filtered struct {
		Count    int           `json:"count"`
		Packages []packageInfo `json:"packages"`
	}
	do(t, s, "GET", "/api/v1/repos/xsede/packages?name=gcc", "", &filtered)
	if filtered.Count == 0 {
		t.Fatal("no gcc builds")
	}
	for _, p := range filtered.Packages {
		if p.Name != "gcc" {
			t.Errorf("filter leaked %q", p.Name)
		}
	}
}

func TestDepsolve(t *testing.T) {
	s := newTestServer(t)
	var resp depsolveResponse
	do(t, s, "POST", "/api/v1/depsolve", `{"install":["gromacs"]}`, &resp)
	if resp.Count == 0 || resp.Count != len(resp.Installs) {
		t.Fatalf("depsolve = %+v", resp)
	}
	found := false
	for _, p := range resp.Installs {
		if p.Name == "gromacs" {
			found = true
		}
	}
	if !found {
		t.Errorf("gromacs not in plan %+v", resp.Installs)
	}

	// A node that already has the package needs nothing.
	var noop depsolveResponse
	do(t, s, "POST", "/api/v1/depsolve", `{"installed":["gromacs"],"install":["gromacs"]}`, &noop)
	if noop.Count != 0 {
		t.Errorf("already-installed depsolve = %+v, want empty plan", noop)
	}
}

// pollDeployment polls GET until the deployment reaches a terminal state,
// following the journal cursor as a real client would, and returns the
// final info plus every event collected along the way.
func pollDeployment(t *testing.T, s *Server, id string) (deploymentInfo, []eventInfo) {
	t.Helper()
	cursor := 0
	var events []eventInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		var info deploymentInfo
		rec := do(t, s, "GET", fmt.Sprintf("/api/v1/deployments/%s?cursor=%d", id, cursor), "", &info)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll: %d %s", rec.Code, rec.Body.String())
		}
		events = append(events, info.Events...)
		if info.NextCursor < cursor {
			t.Fatalf("cursor went backwards: %d -> %d", cursor, info.NextCursor)
		}
		cursor = info.NextCursor
		switch info.State {
		case "ready", "failed", "cancelled":
			return info, events
		}
		if time.Now().After(deadline) {
			t.Fatalf("deployment %s stuck in %q", id, info.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeploymentLifecycle(t *testing.T) {
	// Gate the first compute install so the build provably cannot reach a
	// terminal state before the 202-body assertions run (the build is only
	// milliseconds of wall clock otherwise).
	gate := make(chan struct{})
	var once sync.Once
	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Repos: []*repo.Repository{xnit},
		DeployOptions: []xcbc.Option{xcbc.WithInstallHook(func(node string, attempt int) error {
			<-gate
			return nil
		})},
	})
	release := func() { once.Do(func() { close(gate) }) }
	defer release()

	var created deploymentInfo
	rec := do(t, s, "POST", "/api/v1/deployments",
		`{"cluster":"littlefe","scheduler":"torque","rolls":["ganglia","hpc"],"parallelism":2}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if created.ID == "" || created.Cluster != "LittleFe" || created.Nodes != 6 {
		t.Fatalf("created = %+v", created)
	}
	if created.State != "building" && created.State != "pending" {
		t.Fatalf("created state = %q, want building or pending", created.State)
	}
	if created.PackagesInstalled != 0 || created.Scheduler != "" {
		t.Errorf("202 body leaked build results: %+v", created)
	}

	release()
	final, events := pollDeployment(t, s, created.ID)
	if final.State != "ready" || final.Scheduler != "torque" ||
		final.PackagesInstalled == 0 || final.CompatTotal == 0 || final.InstallDuration == "" {
		t.Fatalf("final = %+v", final)
	}
	stages := map[string]int{}
	for _, ev := range events {
		stages[ev.Stage]++
	}
	if stages["frontend"] != 1 || stages["compute"] != 5 || stages["subsystems"] != 1 {
		t.Errorf("event stages = %v", stages)
	}

	// XNIT path on the diskless Limulus, also async.
	var adopted deploymentInfo
	rec = do(t, s, "POST", "/api/v1/deployments",
		`{"cluster":"limulus","path":"xnit","scheduler":"torque","profiles":["compilers"]}`, &adopted)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("adopt: %d %s", rec.Code, rec.Body.String())
	}
	adoptedFinal, _ := pollDeployment(t, s, adopted.ID)
	if adoptedFinal.Path != "xnit" || adoptedFinal.State != "ready" || adoptedFinal.Scheduler != "torque" {
		t.Fatalf("adopted = %+v", adoptedFinal)
	}

	var list struct {
		Deployments []deploymentInfo `json:"deployments"`
	}
	do(t, s, "GET", "/api/v1/deployments", "", &list)
	if len(list.Deployments) != 2 {
		t.Fatalf("list = %d deployments, want 2", len(list.Deployments))
	}

	// DELETE on a terminal deployment removes it.
	if rec := do(t, s, "DELETE", "/api/v1/deployments/"+created.ID, "", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/v1/deployments/"+created.ID, "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("get after delete: %d, want 404", rec.Code)
	}
}

// TestDeploymentCancel exercises the in-flight DELETE contract: the build
// is gated via the install hook, cancelled while building, and observed
// settling into "cancelled"; a second DELETE then removes the record.
func TestDeploymentCancel(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Repos: []*repo.Repository{xnit},
		DeployOptions: []xcbc.Option{xcbc.WithInstallHook(func(node string, attempt int) error {
			if node == "compute-0-3" {
				once.Do(func() { close(entered) })
				<-gate
			}
			return nil
		})},
	})
	var created deploymentInfo
	rec := do(t, s, "POST", "/api/v1/deployments", `{"cluster":"littlefe","parallelism":2}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	<-entered // the build is now provably in flight, blocked in wave 2

	var info deploymentInfo
	do(t, s, "GET", "/api/v1/deployments/"+created.ID, "", &info)
	if info.State != "building" {
		t.Fatalf("state mid-build = %q", info.State)
	}

	rec = do(t, s, "DELETE", "/api/v1/deployments/"+created.ID, "", &info)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", rec.Code, rec.Body.String())
	}
	close(gate) // let the gated wave finish; the build then observes cancellation
	final, _ := pollDeployment(t, s, created.ID)
	if final.State != "cancelled" || final.Error == "" {
		t.Fatalf("final = %+v", final)
	}
	if rec := do(t, s, "DELETE", "/api/v1/deployments/"+created.ID, "", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete after cancel: %d", rec.Code)
	}
}

// TestDeploymentEventsSSE reads the /events stream over a real HTTP server:
// journal frames arrive as `data:` lines and the stream closes with a
// terminal `event: state` frame.
func TestDeploymentEventsSSE(t *testing.T) {
	s := newTestServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/v1/deployments", "application/json",
		strings.NewReader(`{"cluster":"littlefe","parallelism":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var created deploymentInfo
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	stream, err := http.Get(srv.URL + "/api/v1/deployments/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var dataFrames int
	var terminal string
	scanner := bufio.NewScanner(stream.Body)
	expectState := false
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: state":
			expectState = true
		case strings.HasPrefix(line, "data: ") && expectState:
			var st struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				t.Fatal(err)
			}
			terminal = st.State
		case strings.HasPrefix(line, "data: "):
			var ev eventInfo
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event frame %q: %v", line, err)
			}
			dataFrames++
		}
	}
	if terminal != "ready" {
		t.Fatalf("terminal state frame = %q, want ready", terminal)
	}
	if dataFrames < 7 { // distribution, frontend, 5 computes at least
		t.Errorf("streamed %d events", dataFrames)
	}
}

// TestDeploymentStatusRace hammers status/event reads while a build is
// emitting journal entries — the regression test, under -race, for the
// unguarded Events slice the server used to append to from the build
// goroutine.
func TestDeploymentStatusRace(t *testing.T) {
	s := newTestServer(t)
	var created deploymentInfo
	rec := do(t, s, "POST", "/api/v1/deployments",
		`{"cluster":"littlefe","node_count":24,"parallelism":2}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", "/api/v1/deployments/"+created.ID, nil)
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	final, _ := pollDeployment(t, s, created.ID)
	close(stop)
	wg.Wait()
	if final.State != "ready" || final.Nodes != 25 {
		t.Fatalf("final = %+v", final)
	}
}

func TestRepoConfigsKeepPriorities(t *testing.T) {
	vendor := repo.New("sl-base", "Scientific Linux base", "")
	if err := vendor.Publish(rpm.NewPackage("python", "2.6.6-52.el6.sl", rpm.ArchX86_64).Build()); err != nil {
		t.Fatal(err)
	}
	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{RepoConfigs: []repo.Config{
		{Repo: vendor, Priority: 10, Enabled: true},
		{Repo: xnit, Priority: xcbc.XNITPriority, Enabled: true},
	}})
	var one repoInfo
	do(t, s, "GET", "/api/v1/repos/sl-base", "", &one)
	if one.Priority != 10 {
		t.Errorf("vendor priority = %d, want 10", one.Priority)
	}
	// Priority shadowing must hold in depsolve: the vendor python wins.
	var resp depsolveResponse
	do(t, s, "POST", "/api/v1/depsolve", `{"install":["python"]}`, &resp)
	if len(resp.Installs) != 1 || resp.Installs[0].Version != "2.6.6-52.el6.sl" {
		t.Errorf("depsolve chose %+v, want the vendor python build", resp.Installs)
	}
}

func TestYumRoutesFollowLiveSet(t *testing.T) {
	s := newTestServer(t)
	mirror := repo.New("campus", "Campus mirror", "")
	if err := mirror.Publish(rpm.NewPackage("gcc", "4.4.7-4.el6", rpm.ArchX86_64).Build()); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, "GET", "/campus/repodata/repomd.json", "", nil); rec.Code != 404 {
		t.Fatalf("metadata before add: %d, want 404", rec.Code)
	}
	s.Repos().Add(repo.Config{Repo: mirror, Priority: 60, Enabled: true})
	if rec := do(t, s, "GET", "/campus/repodata/repomd.json", "", nil); rec.Code != 200 {
		t.Fatalf("metadata after add: %d, want 200", rec.Code)
	}
	s.Repos().Remove("campus")
	if rec := do(t, s, "GET", "/campus/repodata/repomd.json", "", nil); rec.Code != 404 {
		t.Fatalf("metadata after remove: %d, want 404", rec.Code)
	}
}

func TestYumRoutesPreserved(t *testing.T) {
	s := newTestServer(t)
	readme := do(t, s, "GET", "/", "", nil)
	if !strings.Contains(readme.Body.String(), "[xsede]") {
		t.Errorf("readme missing yum stanza:\n%s", readme.Body.String())
	}
	var md struct {
		Packages []json.RawMessage `json:"packages"`
	}
	do(t, s, "GET", "/xsede/repodata/repomd.json", "", &md)
	if len(md.Packages) == 0 {
		t.Error("repomd.json has no package records")
	}
}

// TestConcurrentSetMutation exercises the concurrency-safe repo.Set: API
// reads and depsolves race against live repository configuration changes
// and publishes. Run with -race.
func TestConcurrentSetMutation(t *testing.T) {
	s := newTestServer(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: add/remove extra repositories, toggle the main one, publish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("extra-%d", i%4)
			extra := repo.New(id, "extra", "")
			_ = extra.Publish(rpm.NewPackage("filler", fmt.Sprintf("1.%d-1", i), rpm.ArchX86_64).Build())
			s.Repos().Add(repo.Config{Repo: extra, Priority: 60 + i%10, Enabled: i%2 == 0})
			s.Repos().Enable("xsede", i%3 != 0)
			s.Repos().Remove(id)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		xsede := s.Repos().Lookup("xsede")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = xsede.Publish(rpm.NewPackage("churn", fmt.Sprintf("2.%d-1", i), rpm.ArchX86_64).Build())
		}
	}()

	// Readers: list, inspect, depsolve.
	paths := []string{
		"/api/v1/repos",
		"/api/v1/repos/xsede",
		"/api/v1/repos/xsede/packages?name=gcc",
	}
	for _, p := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", path, nil)
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req := httptest.NewRequest("POST", "/api/v1/depsolve",
				strings.NewReader(`{"install":["gcc"]}`))
			s.Handler().ServeHTTP(httptest.NewRecorder(), req)
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestGracefulShutdownWithSSEWatcher proves a client parked on the /events
// stream of a non-terminal build cannot pin graceful shutdown past its
// drain deadline: the stream is woken and closed when shutdown begins.
func TestGracefulShutdownWithSSEWatcher(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Repos: []*repo.Repository{xnit},
		DeployOptions: []xcbc.Option{xcbc.WithInstallHook(func(string, int) error {
			<-gate // hold the build in flight for the whole test
			return nil
		})},
	})
	lc := net.ListenConfig{}
	ln, err := lc.Listen(context.Background(), "tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, addr) }()
	waitUp := time.Now().Add(5 * time.Second)
	for {
		if resp, err := http.Get("http://" + addr + "/api/v1/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(waitUp) {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post("http://"+addr+"/api/v1/deployments", "application/json",
		strings.NewReader(`{"cluster":"littlefe"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created deploymentInfo
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get("http://" + addr + "/api/v1/deployments/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	go io.Copy(io.Discard, stream.Body) // park a watcher on the live stream

	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown with SSE watcher returned %v, want nil", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("server did not shut down while an SSE watcher was attached")
	}
}
