package api

// Multi-tenancy: the server's resource registries (deployments, fleets,
// campaigns) and the durable store seam are sharded per tenant. A tenant
// is resolved from the request's API key by the admission middleware and
// carried through the request context; every handler operates on the
// resolved tenant's shard only, so cross-tenant reads are structurally
// impossible rather than filtered.
//
// Admission is opt-in. A Config with no Tenants runs in "open mode": a
// single anonymous tenant, no keys, no rate limits, no quotas — exactly
// the single-registry behavior the server always had, including the
// on-disk layout (the open tenant journals at the DataDir root). A Config
// with Tenants requires a key on every /api/v1 request except the
// discovery document and the health probe; each named tenant journals
// under DataDir/tenants/<name>.
//
// Admission order is authenticate (401), then rate-limit (429 with
// Retry-After), then quota at resource creation (403 with a typed quota
// error). Key lookup hashes the presented key and compares it against
// every configured tenant with crypto/subtle, so match time does not
// depend on where (or whether) the key matches.

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Quotas bounds how many live resources of each kind a tenant may hold.
// A zero field means unlimited.
type Quotas struct {
	MaxDeployments int `json:"max_deployments,omitempty"`
	MaxFleets      int `json:"max_fleets,omitempty"`
	MaxCampaigns   int `json:"max_campaigns,omitempty"`
}

// TenantConfig declares one tenant of the control plane.
type TenantConfig struct {
	// Name identifies the tenant in logs and on disk (the tenant's WAL
	// lives under DataDir/tenants/<name>); lowercase letters, digits,
	// '-' and '_', at most 64 characters.
	Name string `json:"name"`
	// Key is the tenant's API key, presented as "Authorization: Bearer
	// <key>" or "X-API-Key: <key>". Only its SHA-256 is retained.
	Key string `json:"key"`
	// Quotas caps the tenant's live resources; zero fields are unlimited.
	Quotas Quotas `json:"quotas"`
	// RateLimit is the tenant's sustained request budget in requests per
	// second; 0 means unlimited.
	RateLimit float64 `json:"rate_limit"`
	// Burst is the token-bucket depth; 0 defaults to ceil(RateLimit),
	// at least 1.
	Burst int `json:"burst"`
}

// tenant is one shard of the control plane: its own resource registries,
// ID sequences, admission state, and (on a durable server) its own store.
type tenant struct {
	name    string
	keyHash [sha256.Size]byte
	quotas  Quotas
	limiter *tokenBucket // nil = unlimited
	store   *store       // nil on a memory-only server

	mu             sync.RWMutex
	deployments    map[string]*deployment
	nextID         int
	fleets         map[string]*fleetRecord
	nextFleetID    int
	campaigns      map[string]*campaignRecord
	nextCampaignID int
}

func newTenant(name string) *tenant {
	return &tenant{
		name:        name,
		deployments: make(map[string]*deployment),
		fleets:      make(map[string]*fleetRecord),
		campaigns:   make(map[string]*campaignRecord),
	}
}

// validTenantName reports whether name is usable as a log label and a
// data-directory segment.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// buildTenants validates cfg.Tenants and constructs the tenant shards,
// sorted by name. An empty config yields the single open tenant.
func buildTenants(cfgs []TenantConfig) ([]*tenant, *tenant, error) {
	if len(cfgs) == 0 {
		open := newTenant("")
		return []*tenant{open}, open, nil
	}
	names := make(map[string]bool, len(cfgs))
	keys := make(map[[sha256.Size]byte]bool, len(cfgs))
	tenants := make([]*tenant, 0, len(cfgs))
	for _, c := range cfgs {
		if !validTenantName(c.Name) {
			return nil, nil, fmt.Errorf("api: bad tenant name %q (lowercase letters, digits, '-', '_', max 64 chars)", c.Name)
		}
		if names[c.Name] {
			return nil, nil, fmt.Errorf("api: duplicate tenant name %q", c.Name)
		}
		names[c.Name] = true
		if c.Key == "" {
			return nil, nil, fmt.Errorf("api: tenant %q has an empty API key", c.Name)
		}
		sum := sha256.Sum256([]byte(c.Key))
		if keys[sum] {
			return nil, nil, fmt.Errorf("api: tenant %q reuses another tenant's API key", c.Name)
		}
		keys[sum] = true
		if c.RateLimit < 0 || c.Burst < 0 {
			return nil, nil, fmt.Errorf("api: tenant %q has a negative rate limit or burst", c.Name)
		}
		tn := newTenant(c.Name)
		tn.keyHash = sum
		tn.quotas = c.Quotas
		if c.RateLimit > 0 {
			burst := c.Burst
			if burst <= 0 {
				burst = int(math.Ceil(c.RateLimit))
			}
			tn.limiter = newTokenBucket(c.RateLimit, burst)
		}
		tenants = append(tenants, tn)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	return tenants, nil, nil
}

// tenantKey carries the resolved tenant through the request context.
type tenantKey struct{}

// tenant returns the shard the admission middleware resolved for this
// request. Handlers are only reachable through the middleware, so the
// open-tenant fallback exists for direct handler invocation in tests.
func (s *Server) tenant(r *http.Request) *tenant {
	if tn, ok := r.Context().Value(tenantKey{}).(*tenant); ok {
		return tn
	}
	return s.openTenant
}

// requestKey extracts the presented API key: "Authorization: Bearer
// <key>" preferred, "X-API-Key: <key>" accepted.
func requestKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
		return ""
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// resolveTenant maps the request's key to a tenant. The comparison visits
// every tenant whether or not an earlier one matched, so timing does not
// reveal key prefixes or which tenant (if any) the key belongs to.
func (s *Server) resolveTenant(r *http.Request) (*tenant, bool) {
	key := requestKey(r)
	if key == "" {
		return nil, false
	}
	sum := sha256.Sum256([]byte(key))
	var found *tenant
	for _, tn := range s.tenants {
		if subtle.ConstantTimeCompare(sum[:], tn.keyHash[:]) == 1 {
			found = tn
		}
	}
	return found, found != nil
}

// admitExempt lists the versioned routes that answer without a key even
// in multi-tenant mode, so clients can bootstrap (discover the auth
// contract) and probes can check liveness.
var admitExempt = []string{"GET /api/" + Version, "GET /api/" + Version + "/healthz"}

// admit is the admission middleware: resolve the tenant (401), charge its
// token bucket (429 + Retry-After), and stash the tenant in the request
// context for the handlers. The legacy Yum surface predates API keys and
// stays anonymous; in open mode every request maps to the open tenant.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.openTenant != nil || !strings.HasPrefix(r.URL.Path, "/api/") {
			next.ServeHTTP(w, r)
			return
		}
		tn, ok := s.resolveTenant(r)
		if !ok {
			if r.Method == http.MethodGet &&
				(r.URL.Path == "/api/"+Version || r.URL.Path == "/api/"+Version+"/healthz") {
				next.ServeHTTP(w, r)
				return
			}
			msg := "unknown API key"
			if requestKey(r) == "" {
				msg = "missing API key: send Authorization: Bearer <key> (or X-API-Key)"
			}
			writeError(w, http.StatusUnauthorized, msg)
			return
		}
		if tn.limiter != nil {
			if allowed, wait := tn.limiter.take(s.clock()); !allowed {
				secs := int(math.Ceil(wait.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
				writeJSON(w, http.StatusTooManyRequests, rateLimitError{
					Err:        "rate limit exceeded for tenant " + tn.name,
					Code:       "rate_limited",
					RetryAfter: wait.Round(time.Millisecond).String(),
				})
				return
			}
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn)))
	})
}

// rateLimitError is the 429 body; Err keeps the standard error envelope.
type rateLimitError struct {
	Err        string `json:"error"`
	Code       string `json:"code"`
	RetryAfter string `json:"retry_after"`
}

// quotaError is the 403 body for an exhausted resource quota; Err keeps
// the standard error envelope, the typed fields let clients react
// programmatically.
type quotaError struct {
	Err      string `json:"error"`
	Code     string `json:"code"`
	Resource string `json:"resource"`
	Limit    int    `json:"limit"`
	InUse    int    `json:"in_use"`
}

func writeQuotaError(w http.ResponseWriter, resource string, limit, inUse int) {
	writeJSON(w, http.StatusForbidden, quotaError{
		Err:      fmt.Sprintf("%s quota exceeded: %d of %d in use", resource, inUse, limit),
		Code:     "quota_exceeded",
		Resource: resource,
		Limit:    limit,
		InUse:    inUse,
	})
}

// tokenBucket is a clock-driven token bucket. It is fed the server clock
// on every take, so tests with a fixed clock see fully deterministic
// admission decisions.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take spends one token if available; otherwise it reports how long until
// one accrues.
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if now.After(b.last) {
		b.tokens = min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}
