package api

// Durability: the server journals every resource mutation to a write-ahead
// log (internal/wal) and periodically snapshots its state, so a restart
// with the same data directory recovers deployments, fleets, and scenario
// runs. The store keeps an in-memory mirror — the persistent model — that
// every WAL record is applied to as it is appended; a snapshot is just the
// marshalled mirror, and recovery is "load snapshot, re-apply the WAL
// tail, materialize live resources from the mirror":
//
//   - deployments that settled ready are rebuilt deterministically from
//     their recorded request, then their recorded day-2 operations (job
//     submissions and cancellations, time advances, update checks, metric
//     polls) are replayed in order against the live cluster;
//   - deployments that settled failed or cancelled are archived: state,
//     error, and journal reload as recorded, day-2 routes answer 422;
//   - deployments mid-build at the crash are reconciled to
//     failed (interrupted), or restarted from their recorded request when
//     the store was opened with ResumeInterrupted;
//   - fleets are recreated and re-provisioned; settled scenario runs
//     reload their full recorded result; a run in flight at the crash is
//     replayed from its seed, and the replayed trace is verified against
//     the recorded rolling hash at the recorded cursor — a divergence
//     settles the run as "error" rather than presenting a trace that is
//     not the one the crashed server was producing.
//
// Replay correctness leans on the scenario engine's determinism contract:
// a scenario's trace is a pure function of (script, seed, fresh fleet).
// A run that was not a fleet's first therefore fails hash verification
// after recovery — by design, loudly — because the fleet's accumulated
// day-2 state (poll counters, virtual clocks) is not part of the replay.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"xcbc/internal/wal"
	"xcbc/pkg/xcbc"
)

// DefaultSnapshotEvery is how many WAL records may accumulate before the
// store snapshots its state and truncates the log, when Config does not
// say otherwise.
const DefaultSnapshotEvery = 256

// WAL record types. Payloads are the *Rec structs below, as JSON.
const (
	recDeploymentCreated = "deployment.created"
	recDeploymentEvent   = "deployment.event"
	recDeploymentSettled = "deployment.settled"
	recDeploymentDeleted = "deployment.deleted"
	recClusterOp         = "cluster.op"
	recFleetCreated      = "fleet.created"
	recFleetMember       = "fleet.member"
	recFleetProvisioned  = "fleet.provisioned"
	recFleetDeleted      = "fleet.deleted"
	recScenarioStarted   = "scenario.started"
	recScenarioProgress  = "scenario.progress"
	recScenarioSettled   = "scenario.settled"
	recCampaignStarted   = "campaign.started"
	recCampaignSeed      = "campaign.seed"
	recCampaignSettled   = "campaign.settled"
)

type depCreatedRec struct {
	ID      string                  `json:"id"`
	Path    string                  `json:"path"`
	Req     createDeploymentRequest `json:"req"`
	Created time.Time               `json:"created"`
	Cluster string                  `json:"cluster"`
	Site    string                  `json:"site"`
	Nodes   int                     `json:"nodes"`
}

type depEventRec struct {
	ID    string    `json:"id"`
	Event eventInfo `json:"event"`
}

type depSettledRec struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

type idRec struct {
	ID string `json:"id"`
}

// clusterOpRec records one replayable day-2 mutation against a ready
// cluster. Op selects which optional fields are meaningful.
type clusterOpRec struct {
	ID       string            `json:"id"`
	Op       string            `json:"op"` // job.submit | job.cancel | advance | updates | metrics
	Job      *submitJobRequest `json:"job,omitempty"`
	JobID    int               `json:"job_id,omitempty"`
	Duration string            `json:"duration,omitempty"`
	Policy   string            `json:"policy,omitempty"`
	At       time.Time         `json:"at,omitzero"`
}

type fleetCreatedRec struct {
	ID          string             `json:"id"`
	Name        string             `json:"name"`
	Req         createFleetRequest `json:"req"`
	Created     time.Time          `json:"created"`
	Provisioned bool               `json:"provisioned"`
}

type fleetMemberRec struct {
	ID    string    `json:"id"`
	Event eventInfo `json:"event"`
}

type scenarioStartedRec struct {
	FleetID  string          `json:"fleet_id"`
	RunID    string          `json:"run_id"`
	Name     string          `json:"name"`
	Scenario json.RawMessage `json:"scenario"`
	Created  time.Time       `json:"created"`
}

type scenarioProgressRec struct {
	FleetID string `json:"fleet_id"`
	RunID   string `json:"run_id"`
	Cursor  int    `json:"cursor"`
	Hash    uint64 `json:"hash"` // rolling FNV-1a over the trace JSONL prefix
}

type scenarioSettledRec struct {
	FleetID string          `json:"fleet_id"`
	RunID   string          `json:"run_id"`
	State   string          `json:"state"` // passed | failed | error
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

type campaignStartedRec struct {
	ID      string            `json:"id"`
	Spec    xcbc.CampaignSpec `json:"spec"`
	Created time.Time         `json:"created"`
}

type campaignSeedRec struct {
	ID      string                   `json:"id"`
	Outcome xcbc.CampaignSeedOutcome `json:"outcome"`
}

type campaignSettledRec struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// depMirror is one deployment's persistent model.
type depMirror struct {
	Created depCreatedRec  `json:"created"`
	Events  []eventInfo    `json:"events,omitempty"`
	Ops     []clusterOpRec `json:"ops,omitempty"`
	State   string         `json:"state,omitempty"` // "" while building
	Error   string         `json:"error,omitempty"`
}

// runMirror is one scenario run's persistent model.
type runMirror struct {
	Started scenarioStartedRec `json:"started"`
	Cursor  int                `json:"cursor"`
	Hash    uint64             `json:"hash"`
	State   string             `json:"state,omitempty"` // "" while running
	Error   string             `json:"error,omitempty"`
	Result  json.RawMessage    `json:"result,omitempty"`
}

// fleetMirror is one fleet's persistent model.
type fleetMirror struct {
	Created     fleetCreatedRec `json:"created"`
	Provisioned bool            `json:"provisioned"`
	Events      []eventInfo     `json:"events,omitempty"`
	Runs        []*runMirror    `json:"runs,omitempty"`
}

// campaignMirror is one campaign's persistent model: the spec it started
// with, every per-seed outcome journaled so far (in seed order), and its
// terminal state once settled.
type campaignMirror struct {
	Started  campaignStartedRec         `json:"started"`
	Outcomes []xcbc.CampaignSeedOutcome `json:"outcomes,omitempty"`
	State    string                     `json:"state,omitempty"` // "" while running
	Error    string                     `json:"error,omitempty"`
}

// mirror is the store's full persistent model; a snapshot is exactly its
// JSON form.
type mirror struct {
	Deployments    map[string]*depMirror      `json:"deployments"`
	Fleets         map[string]*fleetMirror    `json:"fleets"`
	Campaigns      map[string]*campaignMirror `json:"campaigns,omitempty"`
	NextID         int                        `json:"next_id"`
	NextFleetID    int                        `json:"next_fleet_id"`
	NextCampaignID int                        `json:"next_campaign_id,omitempty"`
}

func newMirror() *mirror {
	return &mirror{
		Deployments: make(map[string]*depMirror),
		Fleets:      make(map[string]*fleetMirror),
		Campaigns:   make(map[string]*campaignMirror),
	}
}

// store is the server's durability engine: a WAL plus the mirror, and the
// watcher goroutines that feed journal events into it.
type store struct {
	srv       *Server
	tn        *tenant
	log       *wal.Log
	snapEvery int
	resume    bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	m     *mirror
	dirty int // records appended since the last snapshot

	// queue holds coalesced hot records (scenario progress, fleet member
	// events, campaign seed outcomes) already applied to the mirror but not
	// yet written to the WAL. It is flushed as one group commit — a single
	// AppendBatch write — when it reaches groupCommitAt entries, before any
	// non-coalesced record is appended, before every snapshot, and on
	// close, so log order always equals mirror order. A hard crash can lose
	// the queued tail, which is the same durability window fsync batching
	// already allows: recovery then sees a shorter verified prefix, never a
	// reordered or corrupted one.
	queue []wal.BatchEntry
}

// groupCommitAt is how many coalesced hot records may queue before the
// store flushes them as one WAL batch write.
const groupCommitAt = 64

// coalesced reports whether a record type is high-frequency enough to ride
// the group-commit queue rather than paying a WAL write per record.
func coalesced(typ string) bool {
	switch typ {
	case recScenarioProgress, recFleetMember, recCampaignSeed:
		return true
	}
	return false
}

// RecoveryReport summarizes what Open recovered from a data directory.
type RecoveryReport struct {
	DataDir          string `json:"data_dir"`
	SnapshotSeq      uint64 `json:"snapshot_seq"`
	Records          int    `json:"records"` // WAL records applied after the snapshot
	Repaired         bool   `json:"repaired"`
	DroppedBytes     int64  `json:"dropped_bytes"`
	Deployments      int    `json:"deployments"`
	Rebuilt          int    `json:"rebuilt"`     // ready deployments rebuilt live
	Archived         int    `json:"archived"`    // terminal deployments reloaded as records
	Interrupted      int    `json:"interrupted"` // mid-build at crash, reconciled to failed
	Resumed          int    `json:"resumed"`     // mid-build at crash, restarted
	OpsReplayed      int    `json:"ops_replayed"`
	Fleets           int    `json:"fleets"`
	Runs             int    `json:"runs"`     // settled scenario runs restored
	Replayed         int    `json:"replayed"` // in-flight runs replayed from seed
	ReplayMismatches int    `json:"replay_mismatches"`

	// Campaigns counts campaigns restored from the journal;
	// CampaignsInterrupted is how many of them were in flight at the crash
	// and now report their partial per-seed results as "interrupted".
	Campaigns            int `json:"campaigns"`
	CampaignsInterrupted int `json:"campaigns_interrupted"`

	Elapsed time.Duration `json:"elapsed"`
}

// openStore opens (or creates) the tenant's WAL under dir, rebuilds the
// mirror from the newest snapshot plus the log tail, and materializes the
// tenant's live resources from it. Recovery is synchronous: when openStore
// returns, every recovered resource is queryable and every in-flight
// scenario run has been replayed and verified.
func openStore(s *Server, tn *tenant, dir string, cfg Config) (*RecoveryReport, error) {
	start := time.Now()
	l, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("api: opening store: %w", err)
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = DefaultSnapshotEvery
	}
	st := &store{
		srv:       s,
		tn:        tn,
		log:       l,
		snapEvery: snapEvery,
		resume:    cfg.ResumeInterrupted,
		m:         newMirror(),
		dirty:     len(rec.Records),
	}
	st.ctx, st.cancel = context.WithCancel(context.Background())
	report := &RecoveryReport{
		DataDir:      dir,
		SnapshotSeq:  rec.SnapshotSeq,
		Records:      len(rec.Records),
		Repaired:     rec.Repaired,
		DroppedBytes: rec.DroppedBytes,
	}
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, st.m); err != nil {
			return nil, errors.Join(fmt.Errorf("api: decoding snapshot: %w", err), l.Close())
		}
		if st.m.Deployments == nil {
			st.m.Deployments = make(map[string]*depMirror)
		}
		if st.m.Fleets == nil {
			st.m.Fleets = make(map[string]*fleetMirror)
		}
		if st.m.Campaigns == nil {
			st.m.Campaigns = make(map[string]*campaignMirror)
		}
	}
	for _, r := range rec.Records {
		st.apply(r.Type, r.Data)
	}
	// Attach before materializing: recovery replays in-flight scenario runs
	// through the same executeRun the live path uses, and that path finds
	// its observer (and journals replay progress) through the tenant's store.
	tn.store = st
	if err := st.materialize(report); err != nil {
		st.cancel()
		tn.store = nil
		return nil, errors.Join(err, l.Close())
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

// merge folds another tenant's recovery report into this aggregate, for
// the multi-tenant Open summary: counts sum, repair flags accumulate, and
// the snapshot sequence reports the furthest-ahead shard.
func (r *RecoveryReport) merge(o *RecoveryReport) {
	if o.SnapshotSeq > r.SnapshotSeq {
		r.SnapshotSeq = o.SnapshotSeq
	}
	r.Records += o.Records
	r.Repaired = r.Repaired || o.Repaired
	r.DroppedBytes += o.DroppedBytes
	r.Deployments += o.Deployments
	r.Rebuilt += o.Rebuilt
	r.Archived += o.Archived
	r.Interrupted += o.Interrupted
	r.Resumed += o.Resumed
	r.OpsReplayed += o.OpsReplayed
	r.Fleets += o.Fleets
	r.Runs += o.Runs
	r.Replayed += o.Replayed
	r.ReplayMismatches += o.ReplayMismatches
	r.Campaigns += o.Campaigns
	r.CampaignsInterrupted += o.CampaignsInterrupted
	r.Elapsed += o.Elapsed
}

// close stops the store's watchers, flushes any queued group commit and
// the WAL, and closes it. Safe to call once; appends arriving afterwards
// are dropped (ErrClosed).
func (st *store) close() error {
	st.cancel()
	st.wg.Wait()
	st.mu.Lock()
	if err := st.flushLocked(); err != nil && !errors.Is(err, wal.ErrClosed) {
		st.logf("store: flush on close: %v", err)
	}
	st.mu.Unlock()
	return st.log.Close()
}

// flushLocked writes every queued hot record to the WAL as one group
// commit. The queue is consumed whether or not the write succeeds — the
// records are already in the mirror, and a failed batch is the same lost
// tail a failed single append always was. Callers hold st.mu.
func (st *store) flushLocked() error {
	if len(st.queue) == 0 {
		return nil
	}
	_, err := st.log.AppendBatch(st.queue)
	st.dirty += len(st.queue)
	st.queue = st.queue[:0]
	return err
}

// emit applies one record to the mirror and persists it, in one critical
// section so mirror order always matches log order, then takes a snapshot
// if the cadence says one is due. Hot record types ride the group-commit
// queue; everything else flushes the queue and appends directly, keeping
// the on-disk order identical to the apply order. Append failures after
// close are expected during shutdown and ignored; anything else is logged.
func (st *store) emit(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		st.logf("store: marshal %s: %v", typ, err)
		return
	}
	st.mu.Lock()
	st.apply(typ, data)
	if coalesced(typ) {
		// The queued entry must own its bytes: data escapes this call.
		st.queue = append(st.queue, wal.BatchEntry{Type: typ, Data: data})
		if len(st.queue) >= groupCommitAt {
			err = st.flushLocked()
		}
	} else {
		if err = st.flushLocked(); err == nil || errors.Is(err, wal.ErrClosed) {
			_, err = st.log.Append(typ, data)
			st.dirty++
		}
	}
	due := st.dirty >= st.snapEvery
	if due && err == nil {
		// A snapshot must capture only logged records: flush first, or
		// recovery would re-apply the queued tail on top of a mirror image
		// that already contains it.
		if ferr := st.flushLocked(); ferr == nil {
			if state, merr := json.Marshal(st.m); merr == nil {
				if serr := st.log.Snapshot(state); serr == nil {
					st.dirty = 0
				} else if !errors.Is(serr, wal.ErrClosed) {
					st.logf("store: snapshot: %v", serr)
				}
			}
		}
	}
	st.mu.Unlock()
	if err != nil && !errors.Is(err, wal.ErrClosed) {
		st.logf("store: append %s: %v", typ, err)
	}
}

func (st *store) logf(format string, args ...any) {
	if st.srv.logger != nil {
		st.srv.logger.Printf(format, args...)
	}
}

// apply folds one record into the mirror. It is the single transition
// function shared by the live path (emit) and recovery, so replaying the
// log always lands on the same mirror the crashed server had. Records for
// unknown resources (a watcher outliving a DELETE) are dropped. Callers
// hold st.mu; recovery calls it before any watcher exists.
func (st *store) apply(typ string, data []byte) {
	switch typ {
	case recDeploymentCreated:
		var r depCreatedRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		st.m.Deployments[r.ID] = &depMirror{Created: r}
		if n := numSuffix(r.ID); n > st.m.NextID {
			st.m.NextID = n
		}
	case recDeploymentEvent:
		var r depEventRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if d := st.m.Deployments[r.ID]; d != nil {
			// Seq 0 marks the start of a (possibly new, after a resume)
			// build attempt: the old journal is superseded.
			if r.Event.Seq == 0 {
				d.Events = d.Events[:0]
			}
			d.Events = append(d.Events, r.Event)
		}
	case recDeploymentSettled:
		var r depSettledRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if d := st.m.Deployments[r.ID]; d != nil {
			d.State, d.Error = r.State, r.Error
		}
	case recDeploymentDeleted:
		var r idRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		delete(st.m.Deployments, r.ID)
	case recClusterOp:
		var r clusterOpRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if d := st.m.Deployments[r.ID]; d != nil {
			d.Ops = append(d.Ops, r)
		}
	case recFleetCreated:
		var r fleetCreatedRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		st.m.Fleets[r.ID] = &fleetMirror{Created: r, Provisioned: r.Provisioned}
		if n := numSuffix(r.ID); n > st.m.NextFleetID {
			st.m.NextFleetID = n
		}
	case recFleetMember:
		var r fleetMemberRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if f := st.m.Fleets[r.ID]; f != nil {
			if r.Event.Seq == 0 {
				f.Events = f.Events[:0]
			}
			f.Events = append(f.Events, r.Event)
		}
	case recFleetProvisioned:
		var r idRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if f := st.m.Fleets[r.ID]; f != nil {
			f.Provisioned = true
		}
	case recFleetDeleted:
		var r idRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		delete(st.m.Fleets, r.ID)
	case recScenarioStarted:
		var r scenarioStartedRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if f := st.m.Fleets[r.FleetID]; f != nil {
			f.Runs = append(f.Runs, &runMirror{Started: r})
		}
	case recScenarioProgress:
		var r scenarioProgressRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if run := st.findRun(r.FleetID, r.RunID); run != nil {
			run.Cursor, run.Hash = r.Cursor, r.Hash
		}
	case recScenarioSettled:
		var r scenarioSettledRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if run := st.findRun(r.FleetID, r.RunID); run != nil {
			run.State, run.Error, run.Result = r.State, r.Error, r.Result
		}
	case recCampaignStarted:
		var r campaignStartedRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		st.m.Campaigns[r.ID] = &campaignMirror{Started: r}
		if n := numSuffix(r.ID); n > st.m.NextCampaignID {
			st.m.NextCampaignID = n
		}
	case recCampaignSeed:
		var r campaignSeedRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if c := st.m.Campaigns[r.ID]; c != nil {
			c.Outcomes = append(c.Outcomes, r.Outcome)
		}
	case recCampaignSettled:
		var r campaignSettledRec
		if json.Unmarshal(data, &r) != nil {
			return
		}
		if c := st.m.Campaigns[r.ID]; c != nil {
			c.State, c.Error = r.State, r.Error
		}
	}
}

func (st *store) findRun(fleetID, runID string) *runMirror {
	f := st.m.Fleets[fleetID]
	if f == nil {
		return nil
	}
	for _, run := range f.Runs {
		if run.Started.RunID == runID {
			return run
		}
	}
	return nil
}

// numSuffix parses the numeric part of a "d7" / "f3" / "s2" identifier.
func numSuffix(id string) int {
	if len(id) < 2 {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

// watchDeployment streams a live deployment's journal into the WAL until
// the build settles, then records the terminal state. It is the live
// counterpart of the journal the archived path reloads.
func (st *store) watchDeployment(dep *deployment) {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		final := dep.Handle.Watch(st.ctx, func(ev xcbc.Event) {
			st.emit(recDeploymentEvent, depEventRec{ID: dep.ID, Event: eventInfoOf(ev)})
		})
		if !final.Terminal() {
			return // store shutting down; the next recovery reconciles
		}
		rec := depSettledRec{ID: dep.ID, State: string(final)}
		if err := dep.Handle.Err(); err != nil {
			rec.Error = err.Error()
		}
		st.emit(recDeploymentSettled, rec)
	}()
}

// attachFleet taps the fleet's aggregate journal so member lifecycle
// entries persist past the ring's eviction.
func (st *store) attachFleet(fr *fleetRecord) {
	id := fr.ID
	fr.Fleet.SetJournalSink(func(ev xcbc.Event) {
		st.emit(recFleetMember, fleetMemberRec{ID: id, Event: eventInfoOf(ev)})
	})
}

// traceHash is the rolling FNV-1a digest over a trace's JSONL prefix —
// the replay oracle's fingerprint. Feeding it the same events in the same
// order always lands on the same (cursor, sum) pairs, because the trace
// bytes are themselves part of the scenario determinism contract.
type traceHash struct {
	h      hash.Hash64
	cursor int
}

func newTraceHash() *traceHash {
	return &traceHash{h: fnv.New64a()}
}

// add folds one trace event in and returns the cursor and digest after it.
func (th *traceHash) add(ev xcbc.TraceEvent) (int, uint64) {
	line, err := json.Marshal(ev)
	if err != nil {
		return th.cursor, th.h.Sum64()
	}
	th.h.Write(line)
	th.h.Write([]byte{'\n'})
	th.cursor = ev.Seq + 1
	return th.cursor, th.h.Sum64()
}

// replayTarget is the recorded (cursor, hash) a recovery replay must
// reproduce before its result may be trusted.
type replayTarget struct {
	cursor int
	hash   uint64
}

// materialize turns the recovered mirror into the tenant's live
// resources. It runs with the server constructed but not yet serving, so
// it takes the tenant's lock only for map writes.
func (st *store) materialize(report *RecoveryReport) error {
	tn := st.tn

	// Deployments first (fleets do not depend on them). Copy what is
	// needed out of the mirror before spawning watchers that mutate it.
	st.mu.Lock()
	depIDs := make([]string, 0, len(st.m.Deployments))
	for id := range st.m.Deployments {
		depIDs = append(depIDs, id)
	}
	sortByNum(depIDs)
	deps := make([]depMirror, 0, len(depIDs))
	for _, id := range depIDs {
		d := st.m.Deployments[id]
		cp := *d
		cp.Events = append([]eventInfo(nil), d.Events...)
		cp.Ops = append([]clusterOpRec(nil), d.Ops...)
		deps = append(deps, cp)
	}
	nextID, nextFleetID := st.m.NextID, st.m.NextFleetID
	fleetIDs := make([]string, 0, len(st.m.Fleets))
	for id := range st.m.Fleets {
		fleetIDs = append(fleetIDs, id)
	}
	sortByNum(fleetIDs)
	fleets := make([]fleetMirror, 0, len(fleetIDs))
	for _, id := range fleetIDs {
		f := st.m.Fleets[id]
		cp := *f
		cp.Events = append([]eventInfo(nil), f.Events...)
		runs := make([]*runMirror, len(f.Runs))
		for i, r := range f.Runs {
			rc := *r
			runs[i] = &rc
		}
		cp.Runs = runs
		fleets = append(fleets, cp)
	}
	nextCampaignID := st.m.NextCampaignID
	campIDs := make([]string, 0, len(st.m.Campaigns))
	for id := range st.m.Campaigns {
		campIDs = append(campIDs, id)
	}
	sortByNum(campIDs)
	camps := make([]campaignMirror, 0, len(campIDs))
	for _, id := range campIDs {
		c := st.m.Campaigns[id]
		cp := *c
		cp.Outcomes = append([]xcbc.CampaignSeedOutcome(nil), c.Outcomes...)
		camps = append(camps, cp)
	}
	st.mu.Unlock()

	report.Deployments = len(deps)
	for _, m := range deps {
		dep, err := st.recoverDeployment(m, report)
		if err != nil {
			return err
		}
		tn.mu.Lock()
		tn.deployments[dep.ID] = dep
		tn.mu.Unlock()
	}

	report.Fleets = len(fleets)
	for _, m := range fleets {
		fr, err := st.recoverFleet(m, report)
		if err != nil {
			return err
		}
		tn.mu.Lock()
		tn.fleets[fr.ID] = fr
		tn.mu.Unlock()
	}

	for _, m := range camps {
		cr := st.recoverCampaign(m, report)
		tn.mu.Lock()
		tn.campaigns[cr.ID] = cr
		tn.mu.Unlock()
	}

	tn.mu.Lock()
	if nextID > tn.nextID {
		tn.nextID = nextID
	}
	if nextFleetID > tn.nextFleetID {
		tn.nextFleetID = nextFleetID
	}
	if nextCampaignID > tn.nextCampaignID {
		tn.nextCampaignID = nextCampaignID
	}
	tn.mu.Unlock()
	return nil
}

// recoverDeployment materializes one deployment from its mirror entry.
func (st *store) recoverDeployment(m depMirror, report *RecoveryReport) (*deployment, error) {
	s := st.srv
	dep := &deployment{
		ID:      m.Created.ID,
		Path:    m.Created.Path,
		Created: m.Created.Created,
		Req:     m.Created.Req,
		Cluster: m.Created.Cluster,
		Site:    m.Created.Site,
		Nodes:   m.Created.Nodes,
	}
	archive := func(state, errMsg string) {
		dep.arch = &archivedDeployment{State: state, Error: errMsg, Events: m.Events}
		report.Archived++
	}
	switch m.State {
	case string(xcbc.StateReady):
		// Rebuild deterministically from the recorded request, then replay
		// the recorded day-2 operations in log order. A rebuild that does
		// not land ready again (it should: the simulated substrate is
		// deterministic for a request that already succeeded once) archives
		// as failed rather than presenting a half-true cluster.
		h, _, err := s.startBuild(m.Created.Req)
		if err != nil {
			archive(string(xcbc.StateFailed), "recovery rebuild: "+err.Error())
			return dep, nil
		}
		if _, err := h.Wait(st.ctx); err != nil {
			h.Cancel()
			archive(string(xcbc.StateFailed), "recovery rebuild settled "+string(h.Status())+": "+err.Error())
			return dep, nil
		}
		dep.Handle = h
		report.Rebuilt++
		cl, err := h.Cluster()
		if err != nil {
			return nil, fmt.Errorf("api: recovering %s: %w", dep.ID, err)
		}
		for _, op := range m.Ops {
			if err := replayOp(cl, op); err != nil {
				st.logf("store: %s: replaying %s: %v", dep.ID, op.Op, err)
				continue
			}
			report.OpsReplayed++
		}
	case string(xcbc.StateFailed), string(xcbc.StateCancelled):
		archive(m.State, m.Error)
	default:
		// No settled record: the server died with this build in flight.
		if st.resume {
			h, _, err := s.startBuild(m.Created.Req)
			if err != nil {
				archive(string(xcbc.StateFailed), "recovery resume: "+err.Error())
				break
			}
			dep.Handle = h
			st.watchDeployment(dep)
			report.Resumed++
			break
		}
		msg := "interrupted: the server terminated while this deployment was building"
		st.emit(recDeploymentSettled, depSettledRec{
			ID: dep.ID, State: string(xcbc.StateFailed), Error: msg,
		})
		dep.arch = &archivedDeployment{State: string(xcbc.StateFailed), Error: msg, Events: m.Events}
		report.Interrupted++
	}
	return dep, nil
}

// recoverFleet materializes one fleet and its scenario-run history.
func (st *store) recoverFleet(m fleetMirror, report *RecoveryReport) (*fleetRecord, error) {
	fl, err := xcbc.NewFleet(fleetSpecOf(m.Created.Req))
	if err != nil {
		return nil, fmt.Errorf("api: recovering fleet %s: %w", m.Created.ID, err)
	}
	fr := &fleetRecord{
		ID:      m.Created.ID,
		Name:    m.Created.Name,
		Created: m.Created.Created,
		Fleet:   fl,
		tn:      st.tn,
	}

	// An in-flight run that arms kickstart faults must replay against a
	// fleet whose builds have not started; its provision phase will build
	// the members itself.
	var inflight *runMirror
	for _, run := range m.Runs {
		if run.State == "" {
			inflight = run
		}
		if n := numSuffix(run.Started.RunID); n > fr.nextRun {
			fr.nextRun = n
		}
	}
	var inflightSc *xcbc.Scenario
	if inflight != nil {
		if inflightSc, err = xcbc.LoadScenario(inflight.Started.Scenario); err != nil {
			return nil, fmt.Errorf("api: recovering run %s/%s: %w", fr.ID, inflight.Started.RunID, err)
		}
	}
	if m.Provisioned && (inflightSc == nil || !inflightSc.RequiresFreshFleet()) {
		if err := fl.Provision(st.ctx); err != nil {
			return nil, fmt.Errorf("api: re-provisioning fleet %s: %w", fr.ID, err)
		}
		st.attachFleet(fr)
		if err := fl.Wait(st.ctx); err != nil {
			return nil, fmt.Errorf("api: re-provisioning fleet %s: %w", fr.ID, err)
		}
	} else {
		st.attachFleet(fr)
	}

	for _, rm := range m.Runs {
		run := &scenarioRun{
			ID:       rm.Started.RunID,
			Scenario: rm.Started.Name,
			Created:  rm.Started.Created,
			done:     make(chan struct{}),
		}
		if rm.State != "" {
			// Settled before the crash: reload the full recorded result.
			run.state = rm.State
			if rm.Error != "" {
				run.err = errors.New(rm.Error)
			}
			if len(rm.Result) > 0 {
				if run.result, err = xcbc.RestoreScenarioResult(rm.Result); err != nil {
					return nil, fmt.Errorf("api: restoring run %s/%s: %w", fr.ID, run.ID, err)
				}
			}
			close(run.done)
			report.Runs++
			fr.runs = append(fr.runs, run)
			continue
		}
		// In flight at the crash: replay from the seed and verify the
		// trace prefix against the recorded cursor and hash.
		run.state = "running"
		fr.runs = append(fr.runs, run)
		fr.runLive = true
		target := &replayTarget{cursor: rm.Cursor, hash: rm.Hash}
		st.srv.executeRun(fr, run, inflightSc, target)
		report.Replayed++
		if run.state == "error" && run.err != nil && errors.Is(run.err, errReplayDiverged) {
			report.ReplayMismatches++
		}
	}
	return fr, nil
}

// errReplayDiverged marks a recovery replay whose regenerated trace did
// not reproduce the recorded prefix hash.
var errReplayDiverged = errors.New("replay diverged from the recorded trace")

// replayOp re-executes one recorded day-2 operation against a rebuilt
// cluster. Ops replay in their original order, so sequential effects (job
// IDs, poll counts, the virtual clock) land where they were.
func replayOp(cl *xcbc.Cluster, op clusterOpRec) error {
	switch op.Op {
	case "job.submit":
		if op.Job == nil {
			return errors.New("job.submit record without a job")
		}
		spec, err := jobSpecOf(*op.Job)
		if err != nil {
			return err
		}
		_, err = cl.SubmitJob(spec)
		return err
	case "job.cancel":
		return cl.CancelJob(op.JobID)
	case "advance":
		d, err := time.ParseDuration(op.Duration)
		if err != nil {
			return err
		}
		cl.Advance(d)
		return nil
	case "updates":
		policy, err := updatePolicyOf(op.Policy)
		if err != nil {
			return err
		}
		cl.CheckUpdates(policy, op.At)
		return nil
	case "metrics":
		cl.Metrics()
		return nil
	}
	return fmt.Errorf("unknown op %q", op.Op)
}

// recordOp journals one replayable day-2 mutation against the tenant's
// store; a no-op on a memory-only server.
func (tn *tenant) recordOp(op clusterOpRec) {
	if tn.store != nil {
		tn.store.emit(recClusterOp, op)
	}
}

// sortByNum orders resource IDs by their numeric suffix, so recovery
// materializes resources in creation order ("d2" before "d10").
func sortByNum(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return numSuffix(ids[i]) < numSuffix(ids[j]) })
}

// storeInfo is the GET /api/v1/store document.
type storeInfo struct {
	Durable              bool   `json:"durable"`
	DataDir              string `json:"data_dir,omitempty"`
	NextSeq              uint64 `json:"next_seq,omitempty"`
	SnapshotSeq          uint64 `json:"snapshot_seq,omitempty"`
	RecordsSinceSnapshot uint64 `json:"records_since_snapshot,omitempty"`
	Segments             int    `json:"segments,omitempty"`
	WALBytes             int64  `json:"wal_bytes,omitempty"`
	SnapshotBytes        int64  `json:"snapshot_bytes,omitempty"`
	SnapshotAge          string `json:"snapshot_age,omitempty"`
}

// handleStore reports durability status: whether the request's tenant has
// a data directory attached, and if so the WAL's size and the age of the
// newest snapshot.
func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(r)
	if tn.store == nil {
		writeJSON(w, http.StatusOK, storeInfo{Durable: false})
		return
	}
	stats := tn.store.log.Stats()
	info := storeInfo{
		Durable:              true,
		DataDir:              stats.Dir,
		NextSeq:              stats.NextSeq,
		SnapshotSeq:          stats.SnapshotSeq,
		RecordsSinceSnapshot: stats.NextSeq - stats.SnapshotSeq,
		Segments:             stats.Segments,
		WALBytes:             stats.WALBytes,
		SnapshotBytes:        stats.SnapshotBytes,
	}
	if !stats.SnapshotTime.IsZero() {
		info.SnapshotAge = s.clock().Sub(stats.SnapshotTime).Round(time.Millisecond).String()
	}
	writeJSON(w, http.StatusOK, info)
}
