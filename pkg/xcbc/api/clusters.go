package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"xcbc/pkg/xcbc"
)

// This file serves the day-2 view of managed deployments: the
// /api/v1/clusters routes. A cluster shares its ID with the deployment
// that built it; /deployments answers "how is the build going", /clusters
// answers "how is the machine running".

// clusterInfo is the JSON shape of one cluster. State always mirrors the
// deployment lifecycle; the operational fields (scheduler, virtual time,
// job counts) are present once the cluster is operable ("ready").
type clusterInfo struct {
	ID          string   `json:"id"`
	Cluster     string   `json:"cluster"`
	Site        string   `json:"site"`
	Nodes       int      `json:"nodes"`
	State       string   `json:"state"`
	Operable    bool     `json:"operable"`
	Scheduler   string   `json:"scheduler,omitempty"`
	VirtualNow  string   `json:"virtual_now,omitempty"`
	JobsQueued  int      `json:"jobs_queued"`
	JobsRunning int      `json:"jobs_running"`
	JobsDone    int      `json:"jobs_done"`
	Quarantined []string `json:"quarantined,omitempty"`
}

func (s *Server) clusterInfoOf(dep *deployment) clusterInfo {
	info := clusterInfo{
		ID:      dep.ID,
		Cluster: dep.Cluster,
		Site:    dep.Site,
		Nodes:   dep.Nodes,
		State:   dep.state(),
	}
	cl, err := dep.cluster()
	if err != nil {
		return info
	}
	info.Operable = true
	info.Scheduler = cl.Scheduler()
	info.VirtualNow = cl.Now().String()
	info.Quarantined = cl.Deployment().Quarantined()
	for _, j := range cl.Jobs() {
		switch j.State {
		case xcbc.JobQueued:
			info.JobsQueued++
		case xcbc.JobRunning:
			info.JobsRunning++
		default:
			info.JobsDone++
		}
	}
	return info
}

// openCluster resolves {id} to an operable cluster. An unknown ID answers
// 404. A deployment still pending or building answers 409 Conflict with
// the current state and a wait hint (clusterctl turns that into exit 2,
// retryable); one that settled failed or cancelled answers 422, because
// waiting will never make it operable — the record exists only for
// inspection and deletion.
func (s *Server) openCluster(w http.ResponseWriter, r *http.Request) (*xcbc.Cluster, *deployment, *tenant, bool) {
	tn := s.tenant(r)
	dep, ok := lookupDeployment(tn, r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown cluster")
		return nil, nil, nil, false
	}
	cl, err := dep.cluster()
	if err != nil {
		st := dep.state()
		body := map[string]string{
			"error": fmt.Sprintf("cluster %s is not operable: deployment state is %q", dep.ID, st),
			"state": st,
		}
		status := http.StatusConflict
		if dep.terminal() {
			// The build settled without producing a cluster; retrying is
			// pointless, so this is not the 409 "wait" contract.
			status = http.StatusUnprocessableEntity
			body["hint"] = "the build settled " + st + " and will never be operable; inspect GET /api/" + Version + "/deployments/" + dep.ID + ", then DELETE it and create a new deployment"
			if berr := dep.errMsg(); berr != "" {
				body["build_error"] = berr
			}
		} else {
			body["hint"] = "day-2 operations need state \"ready\"; poll GET /api/" + Version + "/deployments/" + dep.ID + " or stream its /events until the build settles"
		}
		writeJSON(w, status, body)
		return nil, nil, nil, false
	}
	return cl, dep, tn, true
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tn := s.tenant(r)
	tn.mu.RLock()
	ids := make([]string, 0, len(tn.deployments))
	for id := range tn.deployments { //detlint:ordered pageIDs sorts before any ID is used
		ids = append(ids, id)
	}
	ids, next := pageIDs(ids, pg)
	deps := make([]*deployment, 0, len(ids))
	for _, id := range ids {
		deps = append(deps, tn.deployments[id])
	}
	tn.mu.RUnlock()
	out := make([]clusterInfo, 0, len(deps))
	for _, dep := range deps {
		out = append(out, s.clusterInfoOf(dep))
	}
	writeJSON(w, http.StatusOK, map[string]any{"clusters": out, "count": len(out), "next_cursor": next})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	_, dep, _, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.clusterInfoOf(dep))
}

// jobInfo is the JSON shape of one batch job snapshot. Times are virtual,
// rendered as durations since simulation start.
type jobInfo struct {
	ID        int      `json:"id"`
	Name      string   `json:"name,omitempty"`
	User      string   `json:"user,omitempty"`
	Cores     int      `json:"cores"`
	State     string   `json:"state"`
	Script    string   `json:"script,omitempty"`
	Walltime  string   `json:"walltime"`
	Runtime   string   `json:"runtime"`
	Submitted string   `json:"submitted"`
	Started   string   `json:"started,omitempty"`
	Ended     string   `json:"ended,omitempty"`
	Nodes     []string `json:"nodes,omitempty"`
	Requeued  bool     `json:"requeued,omitempty"`
}

func jobInfoOf(j xcbc.JobInfo) jobInfo {
	out := jobInfo{
		ID: j.ID, Name: j.Name, User: j.User, Cores: j.Cores,
		State: j.State, Script: j.Script,
		Walltime:  j.Walltime.String(),
		Runtime:   j.Runtime.String(),
		Submitted: j.Submitted.String(),
		Nodes:     j.Nodes, Requeued: j.Requeued,
	}
	if j.State != xcbc.JobQueued {
		out.Started = j.Started.String()
	}
	if j.State != xcbc.JobQueued && j.State != xcbc.JobRunning {
		out.Ended = j.Ended.String()
	}
	return out
}

// submitJobRequest is the POST /clusters/{id}/jobs body. Durations are Go
// duration strings ("30m", "2h"); a zero walltime defaults to one hour and
// a zero runtime to half the walltime.
type submitJobRequest struct {
	Name     string `json:"name"`
	User     string `json:"user"`
	Cores    int    `json:"cores"`
	Walltime string `json:"walltime"`
	Runtime  string `json:"runtime"`
	Script   string `json:"script"`
}

func parseDurationField(field, v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%s must be a non-negative Go duration (e.g. \"30m\"): %q", field, v)
	}
	return d, nil
}

// jobSpecOf turns a submit request into an SDK job spec; the live submit
// handler and recovery's op replay share it so a replayed submission is
// validated and shaped exactly as the original was.
func jobSpecOf(req submitJobRequest) (xcbc.JobSpec, error) {
	spec := xcbc.JobSpec{Name: req.Name, User: req.User, Cores: req.Cores, Script: req.Script}
	var err error
	if spec.Walltime, err = parseDurationField("walltime", req.Walltime); err != nil {
		return spec, err
	}
	if spec.Runtime, err = parseDurationField("runtime", req.Runtime); err != nil {
		return spec, err
	}
	return spec, nil
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	cl, dep, tn, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	var req submitJobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	spec, err := jobSpecOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := cl.SubmitJob(spec)
	if err != nil {
		writeError(w, deployErrorStatus(err), err.Error())
		return
	}
	tn.recordOp(clusterOpRec{ID: dep.ID, Op: "job.submit", Job: &req, JobID: job.ID})
	writeJSON(w, http.StatusCreated, jobInfoOf(job))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	cl, _, _, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	jobs := cl.Jobs()
	if state := r.URL.Query().Get("state"); state != "" {
		switch state {
		case xcbc.JobQueued, xcbc.JobRunning, xcbc.JobCompleted, xcbc.JobCancelled, xcbc.JobTimeout:
		default:
			// Reject typos instead of silently matching nothing.
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown state %q (use queued, running, completed, cancelled, or timeout)", state))
			return
		}
		filtered := jobs[:0]
		for _, j := range jobs {
			if j.State == state {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	out := make([]jobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobInfoOf(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "jobs": out})
}

// parseJobID reads the {jid} path segment.
func parseJobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("jid"))
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, "job id must be a positive integer")
		return 0, false
	}
	return id, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	cl, _, _, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	id, ok := parseJobID(w, r)
	if !ok {
		return
	}
	job, ok := cl.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, jobInfoOf(job))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	cl, dep, tn, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	id, ok := parseJobID(w, r)
	if !ok {
		return
	}
	if err := cl.CancelJob(id); err != nil {
		writeError(w, deployErrorStatus(err), err.Error())
		return
	}
	tn.recordOp(clusterOpRec{ID: dep.ID, Op: "job.cancel", JobID: id})
	job, _ := cl.Job(id)
	writeJSON(w, http.StatusOK, jobInfoOf(job))
}

// nodeMetricsInfo and metricsInfo shape the monitoring snapshot.
type nodeMetricsInfo struct {
	Host       string  `json:"host"`
	Load       float64 `json:"load"`
	PowerWatts float64 `json:"power_watts"`
	Cores      int     `json:"cores"`
}

type metricsInfo struct {
	At           string            `json:"at"` // virtual time of the sample
	Polls        int               `json:"polls"`
	ClusterLoad  float64           `json:"cluster_load"`
	Nodes        []nodeMetricsInfo `json:"nodes"`
	ActiveAlerts []string          `json:"active_alerts"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cl, dep, tn, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	// A metrics request polls the nodes (bumping the poll counter), so it
	// is a recorded, replayed mutation like any other day-2 op.
	m := cl.Metrics()
	tn.recordOp(clusterOpRec{ID: dep.ID, Op: "metrics"})
	out := metricsInfo{
		At: m.At.String(), Polls: m.Polls, ClusterLoad: m.ClusterLoad,
		Nodes:        make([]nodeMetricsInfo, 0, len(m.Nodes)),
		ActiveAlerts: m.ActiveAlerts,
	}
	if out.ActiveAlerts == nil {
		out.ActiveAlerts = []string{}
	}
	for _, n := range m.Nodes {
		out.Nodes = append(out.Nodes, nodeMetricsInfo(n))
	}
	writeJSON(w, http.StatusOK, out)
}

type alertInfo struct {
	At     string `json:"at"`
	Host   string `json:"host"`
	Rule   string `json:"rule"`
	Firing bool   `json:"firing"`
	Detail string `json:"detail"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	cl, _, _, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	active, log := cl.Alerts()
	if active == nil {
		active = []string{}
	}
	out := make([]alertInfo, 0, len(log))
	for _, a := range log {
		out = append(out, alertInfo{At: a.At.String(), Host: a.Host, Rule: a.Rule,
			Firing: a.Firing, Detail: a.Detail})
	}
	writeJSON(w, http.StatusOK, map[string]any{"active": active, "log": out})
}

// validateRequest tunes POST /clusters/{id}/validate; the zero value uses
// the standard HPL sizing (80% of memory) and a 128×128 measured solve.
type validateRequest struct {
	MemFraction float64 `json:"mem_fraction"`
	SmokeN      *int    `json:"smoke_n"` // nil = default 128, 0 = model only
}

type validateResponse struct {
	N             int     `json:"n"`
	RpeakGF       float64 `json:"rpeak_gflops"`
	RmaxGF        float64 `json:"rmax_gflops"`
	Efficiency    float64 `json:"efficiency"`
	ModelElapsed  string  `json:"model_elapsed"`
	SmokeRun      bool    `json:"smoke_run"`
	SmokeN        int     `json:"smoke_n,omitempty"`
	SmokeGFLOPS   float64 `json:"smoke_gflops,omitempty"`
	SmokeResidual float64 `json:"smoke_residual,omitempty"`
	SmokePass     bool    `json:"smoke_pass"`
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	cl, _, _, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	var req validateRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	opts := []xcbc.ValidateOption{}
	if req.MemFraction != 0 {
		opts = append(opts, xcbc.WithMemFraction(req.MemFraction))
	}
	if req.SmokeN != nil {
		if *req.SmokeN < 0 || *req.SmokeN > 1024 {
			writeError(w, http.StatusBadRequest, "smoke_n must be in [0, 1024]")
			return
		}
		opts = append(opts, xcbc.WithSmokeSize(*req.SmokeN))
	}
	v, err := cl.Validate(opts...)
	if err != nil {
		writeError(w, deployErrorStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, validateResponse{
		N: v.N, RpeakGF: v.RpeakGF, RmaxGF: v.RmaxGF, Efficiency: v.Efficiency,
		ModelElapsed: v.ModelElapsed.String(),
		SmokeRun:     v.SmokeRun, SmokeN: v.SmokeN,
		SmokeGFLOPS: v.SmokeGFLOPS, SmokeResidual: v.SmokeResidual, SmokePass: v.SmokePass,
	})
}

// nodeUpdatesInfo and updatesInfo shape the update-check report.
type nodeUpdatesInfo struct {
	Pending int    `json:"pending"`
	Applied int    `json:"applied"`
	Summary string `json:"summary"`
}

type updatesInfo struct {
	Policy       string                     `json:"policy"`
	PendingTotal int                        `json:"pending_total"`
	AppliedTotal int                        `json:"applied_total"`
	Nodes        map[string]nodeUpdatesInfo `json:"nodes"`
}

// updatePolicyOf parses an update-policy name; the live handler and
// recovery's op replay share it.
func updatePolicyOf(p string) (xcbc.UpdatePolicy, error) {
	switch p {
	case "", "notify":
		return xcbc.UpdateNotify, nil
	case "auto-apply":
		return xcbc.UpdateAutoApply, nil
	case "security-only":
		return xcbc.UpdateSecurityOnly, nil
	}
	return 0, fmt.Errorf("unknown policy %q (use notify, auto-apply, or security-only)", p)
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	cl, dep, tn, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	p := r.URL.Query().Get("policy")
	policy, err := updatePolicyOf(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Auto-apply mutates node package state; record the wall-clock instant
	// so a recovery replay re-applies the same update window.
	now := s.clock()
	check := cl.CheckUpdates(policy, now)
	tn.recordOp(clusterOpRec{ID: dep.ID, Op: "updates", Policy: p, At: now})
	out := updatesInfo{
		Policy:       policy.String(),
		PendingTotal: check.PendingTotal(),
		AppliedTotal: check.AppliedTotal(),
		Nodes:        make(map[string]nodeUpdatesInfo, len(check.ByNode)),
	}
	for node, nu := range check.ByNode {
		out.Nodes[node] = nodeUpdatesInfo{Pending: nu.Pending, Applied: nu.Applied, Summary: nu.Summary}
	}
	writeJSON(w, http.StatusOK, out)
}

// advanceRequest moves the cluster's virtual clock forward — the simulated
// substrate's stand-in for wall-clock time passing, which is what lets a
// REST client observe jobs finishing and power policies acting.
type advanceRequest struct {
	Duration string `json:"duration"`
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	cl, dep, tn, ok := s.openCluster(w, r)
	if !ok {
		return
	}
	var req advanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	d, err := time.ParseDuration(req.Duration)
	if err != nil || d <= 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("duration must be a positive Go duration (e.g. \"30m\"): %q", req.Duration))
		return
	}
	// Cap a single advance so one request cannot spin the event loop for
	// unbounded simulated years.
	const maxAdvance = 90 * 24 * time.Hour
	if d > maxAdvance {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("duration exceeds the %v per-request cap", maxAdvance))
		return
	}
	now := cl.Advance(d)
	tn.recordOp(clusterOpRec{ID: dep.ID, Op: "advance", Duration: req.Duration})
	writeJSON(w, http.StatusOK, map[string]string{"virtual_now": now.String()})
}
