// Package api serves the xcbc SDK as a versioned JSON REST control plane
// plus the legacy Yum-over-HTTP routes the XSEDE Campus Bridging team
// served at cb-repo.iu.xsede.org.
//
// Versioned routes (see DESIGN.md for the versioning policy; GET /api/v1
// returns this listing as a machine-readable discovery document, so
// clients can feature-detect the cluster routes):
//
//	GET    /api/v1                          — route/version discovery
//	GET    /api/v1/store                    — durability status (data dir, WAL size, snapshot age)
//	GET    /api/v1/healthz
//	GET    /api/v1/repos
//	GET    /api/v1/repos/{id}
//	GET    /api/v1/repos/{id}/packages[?name=...]
//	POST   /api/v1/depsolve
//	GET    /api/v1/deployments
//	POST   /api/v1/deployments              — 202 Accepted, build runs async
//	GET    /api/v1/deployments/{id}[?cursor=N]
//	GET    /api/v1/deployments/{id}/events  — Server-Sent Events stream
//	DELETE /api/v1/deployments/{id}         — cancels an in-flight build
//	GET    /api/v1/clusters                 — day-2 view of the same records
//	GET    /api/v1/clusters/{id}
//	POST   /api/v1/clusters/{id}/jobs
//	GET    /api/v1/clusters/{id}/jobs[?state=...]
//	GET    /api/v1/clusters/{id}/jobs/{jid}
//	DELETE /api/v1/clusters/{id}/jobs/{jid}
//	GET    /api/v1/clusters/{id}/metrics
//	GET    /api/v1/clusters/{id}/alerts
//	POST   /api/v1/clusters/{id}/validate
//	GET    /api/v1/clusters/{id}/updates[?policy=...]
//	POST   /api/v1/clusters/{id}/advance
//	GET    /api/v1/campaigns                — list generative chaos campaigns
//	POST   /api/v1/campaigns                — 202 Accepted, sweep runs async
//	GET    /api/v1/campaigns/{id}           — progress + failures with shrunk repros
//
// Deployments are asynchronous jobs: POST validates the request, starts the
// build on the SDK's worker pool, and returns immediately with the
// deployment in state "building" (or "pending" when the pool is saturated).
// Clients poll GET with the journal cursor from the previous response, or
// attach to /events for a push stream; DELETE cancels an in-flight build
// (the record stays for status inspection) and removes a terminal one.
//
// Clusters are the day-2 view of the same records: once a deployment
// reaches "ready", its /clusters/{id} sub-routes operate the live system —
// batch jobs, monitoring with alerts, HPL validation, update checks, and
// virtual-time advancement. A sub-route hit before the build settles
// answers 409 Conflict with the current state, so clients know to wait
// rather than retry a different request.
//
// Legacy Yum routes, preserved verbatim:
//
//	GET /                                  — readme.xsederepo
//	GET /{repo}/repodata/repomd.json       — repository metadata
//	GET /{repo}/packages/{nevra}.rpm       — package record
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"maps"
	"math"
	"net/http"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"xcbc/internal/depsolve"
	"xcbc/internal/repo"
	"xcbc/internal/rpm"
	"xcbc/pkg/xcbc"
)

// Version is the current API version segment.
const Version = "v1"

// Config configures a Server.
type Config struct {
	// Repos are the repositories to serve, both through /api/v1 and the
	// legacy Yum routes, all at the XNIT-recommended priority. For
	// per-repository priorities (vendor below XNIT, as
	// yum-plugin-priorities intends) use RepoConfigs instead.
	Repos []*repo.Repository
	// RepoConfigs are served with their configured priority and enabled
	// flag, in addition to anything in Repos.
	RepoConfigs []repo.Config
	// Clock supplies metadata timestamps; nil means time.Now.
	Clock func() time.Time
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger
	// DeployOptions are prepended to every deployment build the server
	// starts: operator defaults such as xcbc.WithParallelism, and the
	// fault-injection seam (xcbc.WithInstallHook) for tests.
	DeployOptions []xcbc.Option
	// DataDir enables durability when set: the server journals every
	// resource mutation to a write-ahead log under this directory and
	// snapshots its state periodically, so a server reopened on the same
	// directory recovers its deployments, fleets, and scenario runs.
	// Durable servers must be constructed with Open (recovery can fail);
	// New panics on a Config with DataDir set.
	DataDir string
	// SnapshotEvery is how many WAL records may accumulate before the
	// store snapshots server state and truncates the log; <= 0 selects
	// DefaultSnapshotEvery.
	SnapshotEvery int
	// ResumeInterrupted restarts deployments the log shows mid-build at
	// recovery, instead of archiving them as failed (interrupted).
	ResumeInterrupted bool
	// CampaignHook, when set, contributes extra violations to every run a
	// campaign on this server checks — the deterministic fault-injection
	// seam campaign tests use to plant invariant bugs.
	CampaignHook xcbc.CampaignCheckHook
	// Tenants switches the server into multi-tenant mode: every /api/v1
	// request (except discovery and health) must present one of these
	// tenants' API keys, and each tenant gets its own resource registries,
	// rate limit, quotas, and — on a durable server — its own WAL under
	// DataDir/tenants/<name>. Empty means open mode: one anonymous tenant,
	// no admission control, the pre-tenancy behavior and disk layout.
	Tenants []TenantConfig
}

// routeInfo describes one versioned route, for both mux registration and
// the GET /api/v1 discovery document.
type routeInfo struct {
	Method  string `json:"method"`
	Path    string `json:"path"`
	Doc     string `json:"doc"`
	handler http.HandlerFunc
}

// Server is the HTTP control plane. Create with New, serve via Handler
// (for tests and embedding) or ListenAndServe (timeouts + graceful
// shutdown included).
type Server struct {
	set        *repo.Set
	clock      func() time.Time
	logger     *log.Logger
	handler    http.Handler
	deployOpts []xcbc.Option
	routes     []routeInfo

	// tenants are the server's shards, sorted by name. openTenant is the
	// single anonymous shard when Config.Tenants is empty (open mode), nil
	// in multi-tenant mode; every resource registry and store lives on a
	// tenant, never on the Server.
	tenants    []*tenant
	openTenant *tenant

	// closing is closed when ListenAndServe begins graceful shutdown so
	// long-lived streams (SSE) end promptly instead of pinning Shutdown
	// against its drain deadline.
	closing     chan struct{}
	closingOnce sync.Once

	// campaignHook is Config.CampaignHook: the test-only planted-bug seam
	// consulted by every campaign this server runs.
	campaignHook xcbc.CampaignCheckHook
}

// deployment is one SDK deployment managed by the server. A live
// deployment's handle owns all mutable build state (lifecycle state,
// capped event journal, result), so the server never touches a build
// goroutine's data directly. A deployment recovered in a terminal
// non-ready state has no live handle; its recorded state, error, and
// journal live in arch instead.
type deployment struct {
	ID      string
	Path    string // "xcbc" or "xnit"
	Created time.Time
	Req     createDeploymentRequest // the request that started the build
	Cluster string
	Site    string
	Nodes   int
	Handle  *xcbc.Handle        // nil when archived
	arch    *archivedDeployment // nil when live
}

// archivedDeployment is the recorded remainder of a deployment that
// settled failed or cancelled (or was interrupted mid-build) before a
// restart: enough to serve status, journal, and deletion, with day-2
// routes answering 422 as they do for any terminal non-ready build.
type archivedDeployment struct {
	State  string
	Error  string
	Events []eventInfo
}

// state returns the deployment's lifecycle state.
func (d *deployment) state() string {
	if d.arch != nil {
		return d.arch.State
	}
	return string(d.Handle.Status())
}

// terminal reports whether the deployment has settled.
func (d *deployment) terminal() bool {
	if d.arch != nil {
		return true
	}
	return d.Handle.Status().Terminal()
}

// errMsg returns the deployment's terminal error message, "" if none.
func (d *deployment) errMsg() string {
	if d.arch != nil {
		return d.arch.Error
	}
	if err := d.Handle.Err(); err != nil {
		return err.Error()
	}
	return ""
}

// cluster returns the live day-2 surface, or an error for a deployment
// that is not (or can never again be) operable.
func (d *deployment) cluster() (*xcbc.Cluster, error) {
	if d.arch != nil {
		return nil, fmt.Errorf("deployment is archived %s", d.arch.State)
	}
	return d.Handle.Cluster()
}

// events returns journal events with Seq >= cursor plus the next cursor.
// A positive limit caps how many events one response carries; the next
// cursor then points at the first event not returned, so clients page
// through with repeated requests. Archived journals are complete
// (recovered from the log, not the capped ring), so their seqs index the
// slice directly.
func (d *deployment) events(cursor, limit int) ([]eventInfo, int) {
	if d.arch != nil {
		evs := d.arch.Events
		if cursor > len(evs) {
			cursor = len(evs)
		}
		end := len(evs)
		if limit > 0 && cursor+limit < end {
			end = cursor + limit
		}
		return evs[cursor:end], end
	}
	evs, next := d.Handle.Events(cursor)
	if limit > 0 && len(evs) > limit {
		evs = evs[:limit]
		next = evs[limit-1].Seq + 1
	}
	out := make([]eventInfo, 0, len(evs))
	for _, ev := range evs {
		out = append(out, eventInfoOf(ev))
	}
	return out, next
}

// New builds a memory-only server for the given configuration. It panics
// on a Config with DataDir set — durable servers are constructed with
// Open, whose recovery can fail and must be able to report it — and on an
// invalid Tenants list (duplicate names or keys, bad names).
func New(cfg Config) *Server {
	if cfg.DataDir != "" {
		panic("api: Config.DataDir requires api.Open, not api.New")
	}
	s, err := newServer(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Open builds a server like New and, when cfg.DataDir is set, attaches
// the durable stores: each tenant's state is recovered from its own
// snapshot and write-ahead log before Open returns (see RecoveryReport
// for what that entails; in multi-tenant mode the report aggregates all
// tenants), and every subsequent mutation is journaled. The open tenant
// journals at the DataDir root; named tenants under DataDir/tenants/.
// Callers should Close the server to flush and release the logs.
func Open(cfg Config) (*Server, *RecoveryReport, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.DataDir == "" {
		return s, &RecoveryReport{}, nil
	}
	agg := &RecoveryReport{DataDir: cfg.DataDir}
	for i, tn := range s.tenants {
		dir := cfg.DataDir
		if tn.name != "" {
			dir = filepath.Join(cfg.DataDir, "tenants", tn.name)
		}
		report, err := openStore(s, tn, dir, cfg)
		if err != nil {
			s.Close() // release the stores tenants before this one opened
			return nil, nil, err
		}
		if i == 0 && tn.name == "" {
			// Open mode: the single report, byte-faithful to pre-tenancy.
			return s, report, nil
		}
		agg.merge(report)
	}
	return s, agg, nil
}

// Close stops the server's background work (store watchers, streams) and
// flushes and closes every tenant's write-ahead log. A memory-only
// server's Close is a cheap no-op. ListenAndServe does not call Close;
// the caller owns it.
func (s *Server) Close() error {
	s.closingOnce.Do(func() { close(s.closing) })
	var errs []error
	for _, tn := range s.tenants {
		if tn.store != nil {
			errs = append(errs, tn.store.close())
			tn.store = nil
		}
	}
	return errors.Join(errs...)
}

func newServer(cfg Config) (*Server, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	tenants, open, err := buildTenants(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	s := &Server{
		set:          repo.NewSet(),
		clock:        clock,
		logger:       cfg.Logger,
		deployOpts:   cfg.DeployOptions,
		closing:      make(chan struct{}),
		tenants:      tenants,
		openTenant:   open,
		campaignHook: cfg.CampaignHook,
	}
	for _, r := range cfg.Repos {
		s.set.Add(repo.Config{Repo: r, Priority: xcbc.XNITPriority, Enabled: true, GPGCheck: true})
	}
	for _, c := range cfg.RepoConfigs {
		s.set.Add(c)
	}

	mux := http.NewServeMux()
	s.routes = []routeInfo{
		{"GET", "/api/v1", "route and version discovery (this document)", s.handleIndex},
		{"GET", "/api/v1/store", "durability status: data dir, WAL size, snapshot age", s.handleStore},
		{"GET", "/api/v1/healthz", "liveness probe", s.handleHealth},
		{"GET", "/api/v1/repos", "list served repositories", s.handleRepos},
		{"GET", "/api/v1/repos/{id}", "one repository's configuration", s.handleRepo},
		{"GET", "/api/v1/repos/{id}/packages", "package records, ?name= filters", s.handleRepoPackages},
		{"POST", "/api/v1/depsolve", "resolve a package install plan", s.handleDepsolve},
		{"GET", "/api/v1/deployments", "list deployments (build-time view)", s.handleDeployments},
		{"POST", "/api/v1/deployments", "start an async build, 202 Accepted", s.handleCreateDeployment},
		{"GET", "/api/v1/deployments/{id}", "build status, ?cursor= pages the journal", s.handleDeployment},
		{"GET", "/api/v1/deployments/{id}/events", "Server-Sent Events build stream", s.handleDeploymentEvents},
		{"DELETE", "/api/v1/deployments/{id}", "cancel in-flight / remove terminal", s.handleDeleteDeployment},
		{"GET", "/api/v1/clusters", "list clusters (day-2 view of deployments)", s.handleClusters},
		{"GET", "/api/v1/clusters/{id}", "cluster summary; 409 until ready", s.handleCluster},
		{"POST", "/api/v1/clusters/{id}/jobs", "submit a batch job", s.handleSubmitJob},
		{"GET", "/api/v1/clusters/{id}/jobs", "list jobs, ?state= filters", s.handleJobs},
		{"GET", "/api/v1/clusters/{id}/jobs/{jid}", "one job's snapshot", s.handleJob},
		{"DELETE", "/api/v1/clusters/{id}/jobs/{jid}", "cancel a queued or running job", s.handleCancelJob},
		{"GET", "/api/v1/clusters/{id}/metrics", "poll nodes and return the snapshot", s.handleMetrics},
		{"GET", "/api/v1/clusters/{id}/alerts", "firing alerts and transition log", s.handleAlerts},
		{"POST", "/api/v1/clusters/{id}/validate", "HPL model + measured smoke solve", s.handleValidate},
		{"GET", "/api/v1/clusters/{id}/updates", "update check, ?policy= selects handling", s.handleUpdates},
		{"POST", "/api/v1/clusters/{id}/advance", "advance virtual time", s.handleAdvance},
		{"GET", "/api/v1/scenarios", "list built-in scenario scripts", s.handleScenarios},
		{"GET", "/api/v1/fleets", "list fleets (aggregate view)", s.handleFleets},
		{"POST", "/api/v1/fleets", "create a fleet, 202 Accepted, builds run async", s.handleCreateFleet},
		{"GET", "/api/v1/fleets/{id}", "fleet status with per-member states", s.handleFleet},
		{"DELETE", "/api/v1/fleets/{id}", "cancel unsettled / remove settled", s.handleDeleteFleet},
		{"POST", "/api/v1/fleets/{id}/scenarios", "run a scenario on the fleet, 202 Accepted", s.handleRunScenario},
		{"GET", "/api/v1/fleets/{id}/scenarios", "list the fleet's scenario runs", s.handleScenarioRuns},
		{"GET", "/api/v1/fleets/{id}/scenarios/{sid}", "run status, ?cursor= pages the trace", s.handleScenarioRun},
		{"GET", "/api/v1/campaigns", "list generative chaos campaigns", s.handleCampaigns},
		{"POST", "/api/v1/campaigns", "sweep generated scenarios, 202 Accepted", s.handleCreateCampaign},
		{"GET", "/api/v1/campaigns/{id}", "campaign progress; failures carry shrunk repros", s.handleCampaign},
	}
	allow := make(map[string][]string)
	for _, rt := range s.routes {
		mux.HandleFunc(rt.Method+" "+rt.Path, rt.handler)
		allow[rt.Path] = append(allow[rt.Path], rt.Method)
	}
	// Method-less fallbacks: a known path with the wrong verb is 405 (with
	// Allow), not 404. The method-specific patterns above are more
	// specific, so they win for their verbs.
	for _, path := range slices.Sorted(maps.Keys(allow)) {
		mux.HandleFunc(path, methodNotAllowed(strings.Join(allow[path], ", ")))
	}
	mux.HandleFunc("/api/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown API route (current version: "+Version+"; discover routes at GET /api/"+Version+")")
	})
	// Everything else is the legacy Yum surface, served over the live set
	// so runtime mutations through Repos() reach both route families.
	mux.Handle("/", repo.NewSetServer(clock, s.set))
	s.handler = s.logged(s.admit(mux))
	return s, nil
}

// Repos returns the server's repository set; it is safe to mutate (add,
// enable, disable) while the server runs.
func (s *Server) Repos() *repo.Set { return s.set }

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to five seconds. The
// server carries read/write/idle timeouts so a slow or stalled client
// cannot pin a connection open indefinitely.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Wake long-lived streams first so Shutdown's drain can finish.
		s.closingOnce.Do(func() { close(s.closing) })
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // http.ErrServerClosed
		return nil
	}
}

// logged wraps a handler with request logging.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status,
			time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the SSE route can stream through
// the logging middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer through
// the logging middleware — without it, the SSE route's write-deadline
// clear silently fails and the server's WriteTimeout kills long streams.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, r.Method+" not allowed (Allow: "+allow+")")
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": Version})
}

// discoveryDoc is the GET /api/v1 document: the API version, the
// admission and pagination contracts, and the full route listing, in a
// struct (not a map) so the field order — and therefore the golden test
// bytes — is pinned.
type discoveryDoc struct {
	Version    string              `json:"version"`
	Auth       discoveryAuth       `json:"auth"`
	Pagination discoveryPagination `json:"pagination"`
	Routes     []routeInfo         `json:"routes"`
}

// discoveryAuth advertises the admission contract so clients can
// feature-detect multi-tenant mode instead of probing for a 401.
type discoveryAuth struct {
	Mode   string   `json:"mode"` // "open" or "api-key"
	Header string   `json:"header,omitempty"`
	Exempt []string `json:"exempt,omitempty"`
}

// discoveryPagination advertises the shared ?cursor=&limit= contract.
type discoveryPagination struct {
	Params       string `json:"params"`
	DefaultLimit int    `json:"default_limit"`
	MaxLimit     int    `json:"max_limit"`
	NextCursor   string `json:"next_cursor"`
}

func (s *Server) discovery() discoveryDoc {
	auth := discoveryAuth{Mode: "open"}
	if s.openTenant == nil {
		auth = discoveryAuth{
			Mode:   "api-key",
			Header: "Authorization: Bearer <key> (or X-API-Key: <key>)",
			Exempt: admitExempt,
		}
	}
	return discoveryDoc{
		Version: Version,
		Auth:    auth,
		Pagination: discoveryPagination{
			Params:       "?cursor=&limit=",
			DefaultLimit: defaultPageLimit,
			MaxLimit:     maxPageLimit,
			NextCursor:   "every list envelope carries next_cursor; pass it back as ?cursor= to continue where the page ended",
		},
		Routes: s.routes,
	}
}

// handleIndex serves the discovery document: the API version, the auth
// and pagination contracts, and the full route listing, so clients can
// feature-detect capabilities (the cluster day-2 routes in particular)
// instead of probing with requests.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.discovery())
}

// repoInfo is the JSON shape of one repository.
type repoInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	BaseURL  string `json:"baseurl"`
	Priority int    `json:"priority"`
	Enabled  bool   `json:"enabled"`
	Packages int    `json:"packages"`
	Revision int    `json:"revision"`
}

func repoInfoOf(c repo.Config) repoInfo {
	return repoInfo{
		ID:       c.Repo.ID,
		Name:     c.Repo.Name,
		BaseURL:  c.Repo.BaseURL,
		Priority: c.Priority,
		Enabled:  c.Enabled,
		Packages: c.Repo.Len(),
		Revision: c.Repo.Revision(),
	}
}

func (s *Server) handleRepos(w http.ResponseWriter, r *http.Request) {
	configs := s.set.Configs()
	out := make([]repoInfo, 0, len(configs))
	for _, c := range configs {
		out = append(out, repoInfoOf(c))
	}
	writeJSON(w, http.StatusOK, map[string]any{"repos": out})
}

// lookupConfig finds the config for a repository ID.
func (s *Server) lookupConfig(id string) (repo.Config, bool) {
	for _, c := range s.set.Configs() {
		if c.Repo.ID == id {
			return c, true
		}
	}
	return repo.Config{}, false
}

func (s *Server) handleRepo(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookupConfig(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown repository")
		return
	}
	writeJSON(w, http.StatusOK, repoInfoOf(c))
}

// packageInfo is the JSON shape of one package record.
type packageInfo struct {
	NEVRA    string `json:"nevra"`
	Name     string `json:"name"`
	Version  string `json:"version"`
	Arch     string `json:"arch"`
	Category string `json:"category,omitempty"`
	Summary  string `json:"summary,omitempty"`
	Size     int64  `json:"size_bytes,omitempty"`
}

func packageInfoOf(p *rpm.Package) packageInfo {
	return packageInfo{
		NEVRA:    p.NEVRA(),
		Name:     p.Name,
		Version:  p.EVR.String(),
		Arch:     string(p.Arch),
		Category: p.Category,
		Summary:  p.Summary,
		Size:     p.SizeBytes,
	}
}

func (s *Server) handleRepoPackages(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep := s.set.Lookup(id)
	if rep == nil {
		writeError(w, http.StatusNotFound, "unknown repository")
		return
	}
	var pkgs []*rpm.Package
	if name := r.URL.Query().Get("name"); name != "" {
		pkgs = rep.Get(name)
	} else {
		pkgs = rep.All()
	}
	out := make([]packageInfo, 0, len(pkgs))
	for _, p := range pkgs {
		out = append(out, packageInfoOf(p))
	}
	writeJSON(w, http.StatusOK, map[string]any{"repo": id, "count": len(out), "packages": out})
}

// depsolveRequest asks for a dependency resolution: which package installs
// a node with `installed` packages needs to end up with `install`.
type depsolveRequest struct {
	Installed []string `json:"installed"`
	Install   []string `json:"install"`
}

type depsolveResponse struct {
	Installs      []packageInfo `json:"installs"`
	Count         int           `json:"count"`
	DownloadBytes int64         `json:"download_bytes"`
}

func (s *Server) handleDepsolve(w http.ResponseWriter, r *http.Request) {
	var req depsolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Install) == 0 {
		writeError(w, http.StatusBadRequest, "install list is empty")
		return
	}
	// Seed a hypothetical node: the installed set, closed over its
	// dependencies, as a real node would be.
	db := rpm.NewDB()
	if len(req.Installed) > 0 {
		seed, err := depsolve.New(s.set, db).Install(req.Installed...)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "installed set unresolvable: "+err.Error())
			return
		}
		if err := seed.Run(db); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "installed set inconsistent: "+err.Error())
			return
		}
	}
	tx, err := depsolve.New(s.set, db).Install(req.Install...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := depsolveResponse{Installs: []packageInfo{}, DownloadBytes: tx.DownloadBytes()}
	for _, op := range tx.Ops {
		if op.Kind != rpm.OpErase {
			resp.Installs = append(resp.Installs, packageInfoOf(op.Pkg))
		}
	}
	resp.Count = len(resp.Installs)
	writeJSON(w, http.StatusOK, resp)
}

// deploymentInfo is the JSON shape of one managed deployment. State is
// always present; the build-result fields (scheduler, packages, compat,
// install duration) are filled in once the deployment reaches "ready", and
// Error once it is "failed" or "cancelled". Events carries the journal
// slice requested via ?cursor=N, NextCursor the value to pass next time.
type deploymentInfo struct {
	ID                string      `json:"id"`
	Path              string      `json:"path"`
	State             string      `json:"state"`
	Error             string      `json:"error,omitempty"`
	Cluster           string      `json:"cluster"`
	Site              string      `json:"site"`
	Nodes             int         `json:"nodes"`
	Scheduler         string      `json:"scheduler,omitempty"`
	PackagesInstalled int         `json:"packages_installed,omitempty"`
	InstallDuration   string      `json:"install_duration,omitempty"`
	Quarantined       []string    `json:"quarantined,omitempty"`
	CompatPassed      int         `json:"compat_passed,omitempty"`
	CompatTotal       int         `json:"compat_total,omitempty"`
	Created           time.Time   `json:"created"`
	Events            []eventInfo `json:"events,omitempty"`
	NextCursor        int         `json:"next_cursor"`
}

type eventInfo struct {
	Seq      int    `json:"seq"`
	Stage    string `json:"stage"`
	Node     string `json:"node,omitempty"`
	Message  string `json:"message,omitempty"`
	Packages int    `json:"packages,omitempty"`
	Elapsed  string `json:"elapsed,omitempty"`
}

func eventInfoOf(ev xcbc.Event) eventInfo {
	return eventInfo{Seq: ev.Seq, Stage: ev.Stage, Node: ev.Node,
		Message: ev.Message, Packages: ev.Packages, Elapsed: ev.Elapsed.String()}
}

func (s *Server) deploymentInfoOf(dep *deployment, withEvents bool, pg page) deploymentInfo {
	info := deploymentInfo{
		ID:      dep.ID,
		Path:    dep.Path,
		State:   dep.state(),
		Error:   dep.errMsg(),
		Cluster: dep.Cluster,
		Site:    dep.Site,
		Nodes:   dep.Nodes,
		Created: dep.Created,
	}
	if dep.Handle != nil {
		if d, ok := dep.Handle.Deployment(); ok {
			info.Scheduler = d.Scheduler()
			info.PackagesInstalled = d.PackagesInstalled()
			info.InstallDuration = d.InstallDuration().String()
			info.Quarantined = d.Quarantined()
			if compat, err := d.Compat(); err == nil {
				info.CompatPassed = compat.Passed
				info.CompatTotal = compat.Total
			}
		}
	}
	if withEvents {
		info.Events, info.NextCursor = dep.events(pg.cursor, pg.limit)
		if info.Events == nil {
			info.Events = []eventInfo{}
		}
	} else {
		// Event-less bodies (list, DELETE-cancel) still report the journal
		// tip so "pass next_cursor back" holds on every response.
		_, info.NextCursor = dep.events(math.MaxInt, 0)
	}
	return info
}

// parseCursor reads the optional ?cursor query parameter (default 0); a
// malformed or negative value is an error, reported the same way on the
// polling and SSE routes.
func parseCursor(r *http.Request) (int, error) {
	c := r.URL.Query().Get("cursor")
	if c == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(c)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("cursor must be a non-negative integer")
	}
	return n, nil
}

func (s *Server) handleDeployments(w http.ResponseWriter, r *http.Request) {
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tn := s.tenant(r)
	tn.mu.RLock()
	ids, next := pageIDs(slices.Collect(maps.Keys(tn.deployments)), pg)
	out := make([]deploymentInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.deploymentInfoOf(tn.deployments[id], false, page{}))
	}
	tn.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"deployments": out, "count": len(out), "next_cursor": next})
}

// createDeploymentRequest provisions a new cluster through the SDK.
type createDeploymentRequest struct {
	Cluster     string   `json:"cluster"`
	Path        string   `json:"path"` // "xcbc" (default) or "xnit"
	Scheduler   string   `json:"scheduler"`
	Rolls       []string `json:"rolls"`
	Profiles    []string `json:"profiles"`
	NodeCount   int      `json:"node_count"`
	Parallelism int      `json:"parallelism"` // compute-install wave width
	Retries     int      `json:"retries"`     // per-node retry budget
}

// startBuild validates req and starts the build asynchronously, returning
// the handle and the normalized path ("xcbc" or "xnit"). Request-shape
// errors wrap xcbc.ErrBadOption so deployErrorStatus keeps them 400. It
// is the single build entry point for the create handler and recovery.
func (s *Server) startBuild(req createDeploymentRequest) (*xcbc.Handle, string, error) {
	hwOpts := append([]xcbc.Option{}, s.deployOpts...)
	if req.Cluster != "" {
		hwOpts = append(hwOpts, xcbc.WithCluster(req.Cluster))
	}
	if req.NodeCount != 0 {
		hwOpts = append(hwOpts, xcbc.WithNodeCount(req.NodeCount))
	}

	var h *xcbc.Handle
	var err error
	path := req.Path
	if path == "" {
		path = "xcbc"
	}
	// The build must outlive the creating request: it is detached from the
	// request context and cancelled only through DELETE (or server policy).
	switch path {
	case "xcbc":
		if len(req.Profiles) > 0 {
			return nil, "", fmt.Errorf("%w: profiles are an XNIT option; the xcbc path uses rolls", xcbc.ErrBadOption)
		}
		opts := hwOpts
		if req.Scheduler != "" {
			opts = append(opts, xcbc.WithScheduler(req.Scheduler))
		}
		if req.Rolls != nil {
			opts = append(opts, xcbc.WithRolls(req.Rolls...))
		}
		if req.Parallelism != 0 {
			opts = append(opts, xcbc.WithParallelism(req.Parallelism))
		}
		if req.Retries != 0 {
			opts = append(opts, xcbc.WithRetries(req.Retries))
		}
		h, err = xcbc.NewXCBC(opts...).Start(context.Background())
	case "xnit":
		if req.Rolls != nil {
			return nil, "", fmt.Errorf("%w: rolls are an XCBC option; the xnit path uses profiles", xcbc.ErrBadOption)
		}
		if req.Parallelism != 0 || req.Retries != 0 {
			return nil, "", fmt.Errorf("%w: parallelism and retries apply to the xcbc kickstart path only", xcbc.ErrBadOption)
		}
		xnitOpts := append(append([]xcbc.Option{}, s.deployOpts...), xcbc.WithProfiles(req.Profiles...))
		if req.Scheduler != "" {
			xnitOpts = append(xnitOpts, xcbc.WithScheduler(req.Scheduler))
		}
		// The vendor hardware arrives provisioned (it is the machine's ship
		// state), so that leg runs synchronously; the XNIT adoption is the
		// long-running build and goes async.
		var vendor *xcbc.Deployment
		vendor, err = xcbc.NewVendor(hwOpts...).Deploy(context.Background())
		if err == nil {
			h, err = xcbc.NewXNIT(vendor, xnitOpts...).Start(context.Background())
		}
	default:
		return nil, "", fmt.Errorf("%w: unknown path %q (use xcbc or xnit)", xcbc.ErrBadOption, path)
	}
	if err != nil {
		return nil, "", err
	}
	return h, path, nil
}

// handleCreateDeployment validates the request synchronously (bad names,
// impossible hardware, and option errors keep their 4xx statuses), then
// starts the build asynchronously and answers 202 Accepted with the
// deployment in its initial lifecycle state. Clients follow up via GET
// polling or the /events stream.
func (s *Server) handleCreateDeployment(w http.ResponseWriter, r *http.Request) {
	var req createDeploymentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tn := s.tenant(r)
	h, path, err := s.startBuild(req)
	if err != nil {
		writeError(w, deployErrorStatus(err), err.Error())
		return
	}

	hw := h.Hardware()
	tn.mu.Lock()
	// The quota check shares the insert's critical section so concurrent
	// creates cannot both squeeze under the cap.
	if max := tn.quotas.MaxDeployments; max > 0 && len(tn.deployments) >= max {
		inUse := len(tn.deployments)
		tn.mu.Unlock()
		h.Cancel()
		writeQuotaError(w, "deployments", max, inUse)
		return
	}
	tn.nextID++
	dep := &deployment{
		ID:      fmt.Sprintf("d%d", tn.nextID),
		Path:    path,
		Created: s.clock(),
		Req:     req,
		Cluster: hw.Name,
		Site:    hw.Site,
		Nodes:   hw.NodeCount(),
		Handle:  h,
	}
	tn.deployments[dep.ID] = dep
	tn.mu.Unlock()
	if tn.store != nil {
		tn.store.emit(recDeploymentCreated, depCreatedRec{
			ID: dep.ID, Path: path, Req: req, Created: dep.Created,
			Cluster: dep.Cluster, Site: dep.Site, Nodes: dep.Nodes,
		})
		tn.store.watchDeployment(dep)
	}
	writeJSON(w, http.StatusAccepted, s.deploymentInfoOf(dep, true, page{limit: defaultPageLimit}))
}

// deployErrorStatus maps SDK sentinel errors onto HTTP statuses: bad names
// and malformed requests are the client's fault, impossible operations are
// unprocessable, unknown resources are 404, a deployment that has not
// settled yet is a 409 conflict, anything else is a server error.
func deployErrorStatus(err error) int {
	switch {
	case errors.Is(err, xcbc.ErrUnknownCluster),
		errors.Is(err, xcbc.ErrUnknownScheduler),
		errors.Is(err, xcbc.ErrUnknownRoll),
		errors.Is(err, xcbc.ErrUnknownProfile),
		errors.Is(err, xcbc.ErrUnknownPowerPolicy),
		errors.Is(err, xcbc.ErrBadNodeCount),
		errors.Is(err, xcbc.ErrBadJob),
		errors.Is(err, xcbc.ErrBadOption):
		return http.StatusBadRequest
	case errors.Is(err, xcbc.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, xcbc.ErrNotReady):
		return http.StatusConflict
	case errors.Is(err, xcbc.ErrDiskless),
		errors.Is(err, xcbc.ErrDepCycle),
		errors.Is(err, xcbc.ErrUnresolvable),
		errors.Is(err, xcbc.ErrJobsRunning),
		errors.Is(err, xcbc.ErrNoScheduler),
		errors.Is(err, xcbc.ErrNoRepos):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request
	}
	return http.StatusInternalServerError
}

func lookupDeployment(tn *tenant, id string) (*deployment, bool) {
	tn.mu.RLock()
	dep, ok := tn.deployments[id]
	tn.mu.RUnlock()
	return dep, ok
}

// handleDeployment reports status. ?cursor=N (default 0) selects which
// journal events ride along, ?limit= caps the page; clients poll by
// passing back next_cursor.
func (s *Server) handleDeployment(w http.ResponseWriter, r *http.Request) {
	dep, ok := lookupDeployment(s.tenant(r), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment")
		return
	}
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.deploymentInfoOf(dep, true, pg))
}

// handleDeploymentEvents streams the journal as Server-Sent Events: one
// `data:` line per event (the eventInfo JSON), then a terminal
// `event: state` frame once the deployment settles, after which the stream
// closes. ?cursor=N resumes mid-journal.
func (s *Server) handleDeploymentEvents(w http.ResponseWriter, r *http.Request) {
	dep, ok := lookupDeployment(s.tenant(r), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	cursor, err := parseCursor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if dep.arch != nil {
		// An archived deployment's journal is complete and its state final:
		// replay the recorded events, send the terminal frame, and close.
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		evs, _ := dep.events(cursor, 0)
		for _, ev := range evs {
			payload, _ := json.Marshal(ev)
			fmt.Fprintf(w, "data: %s\n\n", payload)
		}
		final := map[string]string{"state": dep.arch.State}
		if dep.arch.Error != "" {
			final["error"] = dep.arch.Error
		}
		payload, _ := json.Marshal(final)
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", payload)
		flusher.Flush()
		return
	}
	h := dep.Handle
	// The stream must outlive the server's WriteTimeout (set against
	// slow-loris clients, not long-lived push streams): clear the write
	// deadline for this response only.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	wake, unsubscribe := h.Subscribe()
	defer unsubscribe()
	writeEvents := func() {
		var evs []xcbc.Event
		evs, cursor = h.Events(cursor)
		for _, ev := range evs {
			payload, _ := json.Marshal(eventInfoOf(ev))
			fmt.Fprintf(w, "data: %s\n\n", payload)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
	}
	for {
		writeEvents()
		if st := h.Status(); st.Terminal() {
			writeEvents() // drain anything emitted between read and check
			final := map[string]string{"state": string(st)}
			if err := h.Err(); err != nil {
				final["error"] = err.Error()
			}
			payload, _ := json.Marshal(final)
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", payload)
			flusher.Flush()
			return
		}
		select {
		case <-wake:
		case <-h.Done():
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
	}
}

// handleDeleteDeployment cancels or removes. An in-flight build is
// cancelled — 202 Accepted, the record stays so the cancellation can be
// observed settling — while a terminal deployment is removed (204).
func (s *Server) handleDeleteDeployment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tn := s.tenant(r)
	tn.mu.Lock()
	dep, ok := tn.deployments[id]
	if ok && dep.terminal() {
		delete(tn.deployments, id)
		tn.mu.Unlock()
		if tn.store != nil {
			tn.store.emit(recDeploymentDeleted, idRec{ID: id})
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	tn.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment")
		return
	}
	dep.Handle.Cancel()
	writeJSON(w, http.StatusAccepted, s.deploymentInfoOf(dep, false, page{}))
}
