// Package api serves the xcbc SDK as a versioned JSON REST control plane
// plus the legacy Yum-over-HTTP routes the XSEDE Campus Bridging team
// served at cb-repo.iu.xsede.org.
//
// Versioned routes (see DESIGN.md for the versioning policy):
//
//	GET    /api/v1/healthz
//	GET    /api/v1/repos
//	GET    /api/v1/repos/{id}
//	GET    /api/v1/repos/{id}/packages[?name=...]
//	POST   /api/v1/depsolve
//	GET    /api/v1/deployments
//	POST   /api/v1/deployments
//	GET    /api/v1/deployments/{id}
//	DELETE /api/v1/deployments/{id}
//
// Legacy Yum routes, preserved verbatim:
//
//	GET /                                  — readme.xsederepo
//	GET /{repo}/repodata/repomd.json       — repository metadata
//	GET /{repo}/packages/{nevra}.rpm       — package record
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"xcbc/internal/depsolve"
	"xcbc/internal/repo"
	"xcbc/internal/rpm"
	"xcbc/pkg/xcbc"
)

// Version is the current API version segment.
const Version = "v1"

// Config configures a Server.
type Config struct {
	// Repos are the repositories to serve, both through /api/v1 and the
	// legacy Yum routes, all at the XNIT-recommended priority. For
	// per-repository priorities (vendor below XNIT, as
	// yum-plugin-priorities intends) use RepoConfigs instead.
	Repos []*repo.Repository
	// RepoConfigs are served with their configured priority and enabled
	// flag, in addition to anything in Repos.
	RepoConfigs []repo.Config
	// Clock supplies metadata timestamps; nil means time.Now.
	Clock func() time.Time
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger
}

// Server is the HTTP control plane. Create with New, serve via Handler
// (for tests and embedding) or ListenAndServe (timeouts + graceful
// shutdown included).
type Server struct {
	set     *repo.Set
	clock   func() time.Time
	logger  *log.Logger
	handler http.Handler

	mu          sync.RWMutex
	deployments map[string]*deployment
	nextID      int
}

// deployment is one SDK deployment managed by the server.
type deployment struct {
	ID      string
	Path    string // "xcbc" or "xnit"
	Created time.Time
	D       *xcbc.Deployment
	Events  []xcbc.Event
}

// New builds a server for the given configuration.
func New(cfg Config) *Server {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		set:         repo.NewSet(),
		clock:       clock,
		logger:      cfg.Logger,
		deployments: make(map[string]*deployment),
	}
	for _, r := range cfg.Repos {
		s.set.Add(repo.Config{Repo: r, Priority: xcbc.XNITPriority, Enabled: true, GPGCheck: true})
	}
	for _, c := range cfg.RepoConfigs {
		s.set.Add(c)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /api/v1/repos", s.handleRepos)
	mux.HandleFunc("GET /api/v1/repos/{id}", s.handleRepo)
	mux.HandleFunc("GET /api/v1/repos/{id}/packages", s.handleRepoPackages)
	mux.HandleFunc("POST /api/v1/depsolve", s.handleDepsolve)
	mux.HandleFunc("GET /api/v1/deployments", s.handleDeployments)
	mux.HandleFunc("POST /api/v1/deployments", s.handleCreateDeployment)
	mux.HandleFunc("GET /api/v1/deployments/{id}", s.handleDeployment)
	mux.HandleFunc("DELETE /api/v1/deployments/{id}", s.handleDeleteDeployment)
	// Method-less fallbacks: a known path with the wrong verb is 405 (with
	// Allow), not 404. The method-specific patterns above are more
	// specific, so they win for their verbs.
	for path, allow := range map[string]string{
		"/api/v1/healthz":             "GET",
		"/api/v1/repos":               "GET",
		"/api/v1/repos/{id}":          "GET",
		"/api/v1/repos/{id}/packages": "GET",
		"/api/v1/depsolve":            "POST",
		"/api/v1/deployments":         "GET, POST",
		"/api/v1/deployments/{id}":    "GET, DELETE",
	} {
		mux.HandleFunc(path, methodNotAllowed(allow))
	}
	mux.HandleFunc("/api/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown API route (current version: "+Version+")")
	})
	// Everything else is the legacy Yum surface, served over the live set
	// so runtime mutations through Repos() reach both route families.
	mux.Handle("/", repo.NewSetServer(clock, s.set))
	s.handler = s.logged(mux)
	return s
}

// Repos returns the server's repository set; it is safe to mutate (add,
// enable, disable) while the server runs.
func (s *Server) Repos() *repo.Set { return s.set }

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe serves until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to five seconds. The
// server carries read/write/idle timeouts so a slow or stalled client
// cannot pin a connection open indefinitely.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errc // http.ErrServerClosed
		return nil
	}
}

// logged wraps a handler with request logging.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status,
			time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, r.Method+" not allowed (Allow: "+allow+")")
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "version": Version})
}

// repoInfo is the JSON shape of one repository.
type repoInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	BaseURL  string `json:"baseurl"`
	Priority int    `json:"priority"`
	Enabled  bool   `json:"enabled"`
	Packages int    `json:"packages"`
	Revision int    `json:"revision"`
}

func repoInfoOf(c repo.Config) repoInfo {
	return repoInfo{
		ID:       c.Repo.ID,
		Name:     c.Repo.Name,
		BaseURL:  c.Repo.BaseURL,
		Priority: c.Priority,
		Enabled:  c.Enabled,
		Packages: c.Repo.Len(),
		Revision: c.Repo.Revision(),
	}
}

func (s *Server) handleRepos(w http.ResponseWriter, r *http.Request) {
	configs := s.set.Configs()
	out := make([]repoInfo, 0, len(configs))
	for _, c := range configs {
		out = append(out, repoInfoOf(c))
	}
	writeJSON(w, http.StatusOK, map[string]any{"repos": out})
}

// lookupConfig finds the config for a repository ID.
func (s *Server) lookupConfig(id string) (repo.Config, bool) {
	for _, c := range s.set.Configs() {
		if c.Repo.ID == id {
			return c, true
		}
	}
	return repo.Config{}, false
}

func (s *Server) handleRepo(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookupConfig(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown repository")
		return
	}
	writeJSON(w, http.StatusOK, repoInfoOf(c))
}

// packageInfo is the JSON shape of one package record.
type packageInfo struct {
	NEVRA    string `json:"nevra"`
	Name     string `json:"name"`
	Version  string `json:"version"`
	Arch     string `json:"arch"`
	Category string `json:"category,omitempty"`
	Summary  string `json:"summary,omitempty"`
	Size     int64  `json:"size_bytes,omitempty"`
}

func packageInfoOf(p *rpm.Package) packageInfo {
	return packageInfo{
		NEVRA:    p.NEVRA(),
		Name:     p.Name,
		Version:  p.EVR.String(),
		Arch:     string(p.Arch),
		Category: p.Category,
		Summary:  p.Summary,
		Size:     p.SizeBytes,
	}
}

func (s *Server) handleRepoPackages(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep := s.set.Lookup(id)
	if rep == nil {
		writeError(w, http.StatusNotFound, "unknown repository")
		return
	}
	var pkgs []*rpm.Package
	if name := r.URL.Query().Get("name"); name != "" {
		pkgs = rep.Get(name)
	} else {
		pkgs = rep.All()
	}
	out := make([]packageInfo, 0, len(pkgs))
	for _, p := range pkgs {
		out = append(out, packageInfoOf(p))
	}
	writeJSON(w, http.StatusOK, map[string]any{"repo": id, "count": len(out), "packages": out})
}

// depsolveRequest asks for a dependency resolution: which package installs
// a node with `installed` packages needs to end up with `install`.
type depsolveRequest struct {
	Installed []string `json:"installed"`
	Install   []string `json:"install"`
}

type depsolveResponse struct {
	Installs      []packageInfo `json:"installs"`
	Count         int           `json:"count"`
	DownloadBytes int64         `json:"download_bytes"`
}

func (s *Server) handleDepsolve(w http.ResponseWriter, r *http.Request) {
	var req depsolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Install) == 0 {
		writeError(w, http.StatusBadRequest, "install list is empty")
		return
	}
	// Seed a hypothetical node: the installed set, closed over its
	// dependencies, as a real node would be.
	db := rpm.NewDB()
	if len(req.Installed) > 0 {
		seed, err := depsolve.New(s.set, db).Install(req.Installed...)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "installed set unresolvable: "+err.Error())
			return
		}
		if err := seed.Run(db); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "installed set inconsistent: "+err.Error())
			return
		}
	}
	tx, err := depsolve.New(s.set, db).Install(req.Install...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := depsolveResponse{Installs: []packageInfo{}, DownloadBytes: tx.DownloadBytes()}
	for _, op := range tx.Ops {
		if op.Kind != rpm.OpErase {
			resp.Installs = append(resp.Installs, packageInfoOf(op.Pkg))
		}
	}
	resp.Count = len(resp.Installs)
	writeJSON(w, http.StatusOK, resp)
}

// deploymentInfo is the JSON shape of one managed deployment.
type deploymentInfo struct {
	ID                string      `json:"id"`
	Path              string      `json:"path"`
	Cluster           string      `json:"cluster"`
	Site              string      `json:"site"`
	Nodes             int         `json:"nodes"`
	Scheduler         string      `json:"scheduler"`
	PackagesInstalled int         `json:"packages_installed"`
	InstallDuration   string      `json:"install_duration"`
	CompatPassed      int         `json:"compat_passed"`
	CompatTotal       int         `json:"compat_total"`
	Created           time.Time   `json:"created"`
	Events            []eventInfo `json:"events,omitempty"`
}

type eventInfo struct {
	Stage    string `json:"stage"`
	Node     string `json:"node,omitempty"`
	Message  string `json:"message,omitempty"`
	Packages int    `json:"packages,omitempty"`
	Elapsed  string `json:"elapsed,omitempty"`
}

func (s *Server) deploymentInfoOf(dep *deployment, withEvents bool) deploymentInfo {
	d := dep.D
	info := deploymentInfo{
		ID:                dep.ID,
		Path:              dep.Path,
		Cluster:           d.Hardware().Name,
		Site:              d.Hardware().Site,
		Nodes:             d.Hardware().NodeCount(),
		Scheduler:         d.Scheduler(),
		PackagesInstalled: d.PackagesInstalled(),
		InstallDuration:   d.InstallDuration().String(),
		Created:           dep.Created,
	}
	if compat, err := d.Compat(); err == nil {
		info.CompatPassed = compat.Passed
		info.CompatTotal = compat.Total
	}
	if withEvents {
		info.Events = make([]eventInfo, 0, len(dep.Events))
		for _, ev := range dep.Events {
			info.Events = append(info.Events, eventInfo{Stage: ev.Stage, Node: ev.Node,
				Message: ev.Message, Packages: ev.Packages, Elapsed: ev.Elapsed.String()})
		}
	}
	return info
}

func (s *Server) handleDeployments(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]deploymentInfo, 0, len(s.deployments))
	for _, dep := range s.deployments {
		out = append(out, s.deploymentInfoOf(dep, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"deployments": out})
}

// createDeploymentRequest provisions a new cluster through the SDK.
type createDeploymentRequest struct {
	Cluster   string   `json:"cluster"`
	Path      string   `json:"path"` // "xcbc" (default) or "xnit"
	Scheduler string   `json:"scheduler"`
	Rolls     []string `json:"rolls"`
	Profiles  []string `json:"profiles"`
	NodeCount int      `json:"node_count"`
}

func (s *Server) handleCreateDeployment(w http.ResponseWriter, r *http.Request) {
	var req createDeploymentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var events []xcbc.Event
	progress := xcbc.WithProgress(func(ev xcbc.Event) { events = append(events, ev) })
	hwOpts := []xcbc.Option{progress}
	if req.Cluster != "" {
		hwOpts = append(hwOpts, xcbc.WithCluster(req.Cluster))
	}
	if req.NodeCount != 0 {
		hwOpts = append(hwOpts, xcbc.WithNodeCount(req.NodeCount))
	}

	var d *xcbc.Deployment
	var err error
	path := req.Path
	if path == "" {
		path = "xcbc"
	}
	switch path {
	case "xcbc":
		if len(req.Profiles) > 0 {
			writeError(w, http.StatusBadRequest, "profiles are an XNIT option; the xcbc path uses rolls")
			return
		}
		opts := hwOpts
		if req.Scheduler != "" {
			opts = append(opts, xcbc.WithScheduler(req.Scheduler))
		}
		if req.Rolls != nil {
			opts = append(opts, xcbc.WithRolls(req.Rolls...))
		}
		d, err = xcbc.NewXCBC(opts...).Deploy(r.Context())
	case "xnit":
		if req.Rolls != nil {
			writeError(w, http.StatusBadRequest, "rolls are an XCBC option; the xnit path uses profiles")
			return
		}
		xnitOpts := []xcbc.Option{progress, xcbc.WithProfiles(req.Profiles...)}
		if req.Scheduler != "" {
			xnitOpts = append(xnitOpts, xcbc.WithScheduler(req.Scheduler))
		}
		var vendor *xcbc.Deployment
		vendor, err = xcbc.NewVendor(hwOpts...).Deploy(r.Context())
		if err == nil {
			d, err = xcbc.NewXNIT(vendor, xnitOpts...).Deploy(r.Context())
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown path %q (use xcbc or xnit)", path))
		return
	}
	if err != nil {
		writeError(w, deployErrorStatus(err), err.Error())
		return
	}

	s.mu.Lock()
	s.nextID++
	dep := &deployment{
		ID:      fmt.Sprintf("d%d", s.nextID),
		Path:    path,
		Created: s.clock(),
		D:       d,
		Events:  events,
	}
	s.deployments[dep.ID] = dep
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.deploymentInfoOf(dep, true))
}

// deployErrorStatus maps SDK sentinel errors onto HTTP statuses: bad names
// are the client's fault, impossible builds are unprocessable, anything
// else is a server error.
func deployErrorStatus(err error) int {
	switch {
	case errors.Is(err, xcbc.ErrUnknownCluster),
		errors.Is(err, xcbc.ErrUnknownScheduler),
		errors.Is(err, xcbc.ErrUnknownRoll),
		errors.Is(err, xcbc.ErrUnknownProfile),
		errors.Is(err, xcbc.ErrUnknownPowerPolicy),
		errors.Is(err, xcbc.ErrBadNodeCount):
		return http.StatusBadRequest
	case errors.Is(err, xcbc.ErrDiskless),
		errors.Is(err, xcbc.ErrDepCycle),
		errors.Is(err, xcbc.ErrUnresolvable),
		errors.Is(err, xcbc.ErrJobsRunning),
		errors.Is(err, xcbc.ErrNoRepos):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request
	}
	return http.StatusInternalServerError
}

func (s *Server) handleDeployment(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	dep, ok := s.deployments[r.PathValue("id")]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment")
		return
	}
	writeJSON(w, http.StatusOK, s.deploymentInfoOf(dep, true))
}

func (s *Server) handleDeleteDeployment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.deployments[id]
	delete(s.deployments, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown deployment")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
