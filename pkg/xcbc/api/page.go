package api

// Pagination: every list endpoint (and every journal/trace cursor) reads
// the same ?cursor=&limit= pair and reports next_cursor in its envelope.
// Resource listings order by the numeric ID suffix ("d2" before "d10"),
// and the cursor is an ID floor — "items numbered after N" — so pages
// are stable under concurrent creation and deletion: an item deleted
// mid-iteration never shifts the remaining items across a page boundary.
// Journal and trace cursors keep their sequence-number semantics; limit
// caps how many events ride along per response.

import (
	"fmt"
	"net/http"
	"strconv"
)

const (
	// defaultPageLimit is how many items a list response carries when the
	// client does not say; maxPageLimit is the most it may ask for. Every
	// list endpoint enforces both, so no request reads an unbounded slice
	// of a registry.
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// page is one validated ?cursor=&limit= pair.
type page struct {
	cursor int
	limit  int
}

// parsePage validates the request's pagination parameters. A missing
// cursor starts from the beginning and a missing limit selects the
// default; malformed or out-of-range values are a 400-level error.
func parsePage(r *http.Request) (page, error) {
	pg := page{limit: defaultPageLimit}
	q := r.URL.Query()
	if c := q.Get("cursor"); c != "" {
		n, err := strconv.Atoi(c)
		if err != nil || n < 0 {
			return pg, fmt.Errorf("cursor must be a non-negative integer")
		}
		pg.cursor = n
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 || n > maxPageLimit {
			return pg, fmt.Errorf("limit must be an integer in [1, %d]", maxPageLimit)
		}
		pg.limit = n
	}
	return pg, nil
}

// pageIDs selects one page of resource IDs: sort by numeric suffix, skip
// IDs at or below the cursor, take up to limit. It returns the page and
// the next cursor (the last returned ID's number; the cursor itself when
// the page is empty, so clients can poll a stable tail).
func pageIDs(ids []string, pg page) ([]string, int) {
	sortByNum(ids)
	next := pg.cursor
	out := ids[:0]
	for _, id := range ids {
		n := numSuffix(id)
		if n <= pg.cursor {
			continue
		}
		if len(out) >= pg.limit {
			break
		}
		out = append(out, id)
		next = n
	}
	return out, next
}
