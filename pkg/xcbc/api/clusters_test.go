package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xcbc/pkg/xcbc"
)

// TestDiscovery checks the GET /api/v1 discovery document: version plus a
// route listing that includes the day-2 cluster routes, so clients can
// feature-detect them.
func TestDiscovery(t *testing.T) {
	s := newTestServer(t)
	var doc struct {
		Version string `json:"version"`
		Routes  []struct {
			Method string `json:"method"`
			Path   string `json:"path"`
			Doc    string `json:"doc"`
		} `json:"routes"`
	}
	rec := do(t, s, "GET", "/api/v1", "", &doc)
	if rec.Code != http.StatusOK {
		t.Fatalf("discovery: %d %s", rec.Code, rec.Body.String())
	}
	if doc.Version != Version {
		t.Fatalf("version = %q", doc.Version)
	}
	want := map[string]bool{
		"GET /api/v1":                             false,
		"POST /api/v1/clusters/{id}/jobs":         false,
		"GET /api/v1/clusters/{id}/metrics":       false,
		"POST /api/v1/clusters/{id}/validate":     false,
		"GET /api/v1/clusters/{id}/updates":       false,
		"POST /api/v1/deployments":                false,
		"DELETE /api/v1/clusters/{id}/jobs/{jid}": false,
	}
	for _, r := range doc.Routes {
		key := r.Method + " " + r.Path
		if _, tracked := want[key]; tracked {
			want[key] = true
		}
		if r.Doc == "" {
			t.Errorf("route %s has no doc string", key)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("discovery missing route %s", key)
		}
	}
	// The discovery path rejects other verbs with 405, not 404.
	if rec := do(t, s, "DELETE", "/api/v1", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /api/v1 = %d, want 405", rec.Code)
	}
}

// deployReady creates a deployment through the API and polls it to ready,
// returning its ID (shared by the /clusters view).
func deployReady(t *testing.T, s *Server, body string) string {
	t.Helper()
	var created deploymentInfo
	rec := do(t, s, "POST", "/api/v1/deployments", body, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	final, _ := pollDeployment(t, s, created.ID)
	if final.State != "ready" {
		t.Fatalf("deployment settled %q: %s", final.State, final.Error)
	}
	return created.ID
}

// TestClusterNotReadyConflict drives the 409 contract: every day-2 route
// on an in-flight build answers Conflict with the state and a hint (what
// clusterctl turns into exit 2), and an unknown ID stays 404.
func TestClusterNotReadyConflict(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := New(Config{
		DeployOptions: []xcbc.Option{xcbc.WithInstallHook(func(string, int) error {
			<-gate
			return nil
		})},
	})
	var created deploymentInfo
	rec := do(t, s, "POST", "/api/v1/deployments", `{"cluster":"littlefe"}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	id := created.ID

	var conflict struct {
		Error string `json:"error"`
		State string `json:"state"`
		Hint  string `json:"hint"`
	}
	cases := []struct{ method, path, body string }{
		{"GET", "/api/v1/clusters/" + id, ""},
		{"POST", "/api/v1/clusters/" + id + "/jobs", `{"cores":1}`},
		{"GET", "/api/v1/clusters/" + id + "/jobs", ""},
		{"GET", "/api/v1/clusters/" + id + "/jobs/1", ""},
		{"DELETE", "/api/v1/clusters/" + id + "/jobs/1", ""},
		{"GET", "/api/v1/clusters/" + id + "/metrics", ""},
		{"GET", "/api/v1/clusters/" + id + "/alerts", ""},
		{"POST", "/api/v1/clusters/" + id + "/validate", `{}`},
		{"GET", "/api/v1/clusters/" + id + "/updates", ""},
		{"POST", "/api/v1/clusters/" + id + "/advance", `{"duration":"1m"}`},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.path, tc.body, &conflict)
		if rec.Code != http.StatusConflict {
			t.Errorf("%s %s mid-build = %d, want 409 (body %s)", tc.method, tc.path, rec.Code, rec.Body.String())
			continue
		}
		if conflict.State == "" || conflict.Hint == "" || conflict.Error == "" {
			t.Errorf("%s %s conflict body incomplete: %+v", tc.method, tc.path, conflict)
		}
	}
	// The list view still works and reports the record as not operable.
	var list struct {
		Clusters []clusterInfo `json:"clusters"`
	}
	do(t, s, "GET", "/api/v1/clusters", "", &list)
	if len(list.Clusters) != 1 || list.Clusters[0].Operable {
		t.Fatalf("clusters mid-build = %+v", list.Clusters)
	}
	// Unknown IDs are 404, not 409.
	if rec := do(t, s, "GET", "/api/v1/clusters/nosuch", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown cluster = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/v1/clusters/nosuch/metrics", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown cluster metrics = %d, want 404", rec.Code)
	}
}

// TestClusterFailedBuildUnprocessable distinguishes the terminal case from
// the transient one: a build that settled "failed" answers 422 (waiting is
// pointless — not clusterctl's retryable exit 2), with the build error
// attached.
func TestClusterFailedBuildUnprocessable(t *testing.T) {
	s := New(Config{
		DeployOptions: []xcbc.Option{xcbc.WithInstallHook(func(string, int) error {
			return fmt.Errorf("injected PXE fault")
		})},
	})
	var created deploymentInfo
	rec := do(t, s, "POST", "/api/v1/deployments", `{"cluster":"littlefe"}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	final, _ := pollDeployment(t, s, created.ID)
	if final.State != "failed" {
		t.Fatalf("deployment settled %q, want failed", final.State)
	}
	var body struct {
		Error      string `json:"error"`
		State      string `json:"state"`
		Hint       string `json:"hint"`
		BuildError string `json:"build_error"`
	}
	rec = do(t, s, "GET", "/api/v1/clusters/"+created.ID+"/metrics", "", &body)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("failed cluster = %d, want 422 (body %s)", rec.Code, rec.Body.String())
	}
	if body.State != "failed" || body.Hint == "" || body.BuildError == "" {
		t.Fatalf("422 body = %+v", body)
	}
}

// TestClusterLifecycleREST is the end-to-end day-2 arc over REST: deploy
// async, open the cluster view, submit jobs, advance virtual time, watch
// metrics, cancel, validate, check updates, and finally delete the record.
func TestClusterLifecycleREST(t *testing.T) {
	s := newTestServer(t)
	id := deployReady(t, s, `{"cluster":"littlefe","scheduler":"torque","parallelism":4}`)

	// The cluster view of the ready record is operable.
	var info clusterInfo
	rec := do(t, s, "GET", "/api/v1/clusters/"+id, "", &info)
	if rec.Code != http.StatusOK {
		t.Fatalf("get cluster: %d %s", rec.Code, rec.Body.String())
	}
	if !info.Operable || info.Scheduler != "torque" || info.Nodes != 6 {
		t.Fatalf("cluster info = %+v", info)
	}

	// Submit a job that fits (runs immediately) and one that queues.
	var small jobInfo
	rec = do(t, s, "POST", "/api/v1/clusters/"+id+"/jobs",
		`{"name":"relax","user":"alice","cores":2,"walltime":"1h","runtime":"10m"}`, &small)
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	if small.ID != 1 || small.State != "running" {
		t.Fatalf("small job = %+v", small)
	}
	var big jobInfo
	do(t, s, "POST", "/api/v1/clusters/"+id+"/jobs",
		`{"name":"assembly","user":"carol","cores":10,"walltime":"2h","runtime":"1h"}`, &big)
	if big.State != "queued" {
		t.Fatalf("big job = %+v", big)
	}

	// Bad submissions keep their 4xx statuses.
	if rec := do(t, s, "POST", "/api/v1/clusters/"+id+"/jobs", `{"cores":10000}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized job = %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/v1/clusters/"+id+"/jobs", `{"cores":1,"walltime":"-5m"}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("negative walltime = %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/v1/clusters/"+id+"/jobs", `not json`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", rec.Code)
	}

	// Filtered listing.
	var queued struct {
		Count int       `json:"count"`
		Jobs  []jobInfo `json:"jobs"`
	}
	do(t, s, "GET", "/api/v1/clusters/"+id+"/jobs?state=queued", "", &queued)
	if queued.Count != 1 || queued.Jobs[0].ID != big.ID {
		t.Fatalf("queued listing = %+v", queued)
	}
	// A typoed state filter is rejected, not silently empty.
	if rec := do(t, s, "GET", "/api/v1/clusters/"+id+"/jobs?state=complete", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("typoed state filter = %d, want 400", rec.Code)
	}

	// Metrics see every node, with load from the running job.
	var m metricsInfo
	do(t, s, "GET", "/api/v1/clusters/"+id+"/metrics", "", &m)
	if len(m.Nodes) != 6 || m.ClusterLoad <= 0 {
		t.Fatalf("metrics = %+v", m)
	}

	// Advance 15 minutes of virtual time: the small job (10m) finishes and
	// the big one takes its place.
	var adv struct {
		VirtualNow string `json:"virtual_now"`
	}
	rec = do(t, s, "POST", "/api/v1/clusters/"+id+"/advance", `{"duration":"15m"}`, &adv)
	if rec.Code != http.StatusOK || adv.VirtualNow == "" {
		t.Fatalf("advance: %d %+v", rec.Code, adv)
	}
	var one jobInfo
	do(t, s, "GET", fmt.Sprintf("/api/v1/clusters/%s/jobs/%d", id, small.ID), "", &one)
	if one.State != "completed" || one.Ended == "" {
		t.Fatalf("small job after advance = %+v", one)
	}

	// Cancel the now-running big job; repeats and unknowns are 404.
	var cancelled jobInfo
	rec = do(t, s, "DELETE", fmt.Sprintf("/api/v1/clusters/%s/jobs/%d", id, big.ID), "", &cancelled)
	if rec.Code != http.StatusOK || cancelled.State != "cancelled" {
		t.Fatalf("cancel: %d %+v", rec.Code, cancelled)
	}
	if rec := do(t, s, "DELETE", fmt.Sprintf("/api/v1/clusters/%s/jobs/%d", id, big.ID), "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("double cancel = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/v1/clusters/"+id+"/jobs/99", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/api/v1/clusters/"+id+"/jobs/abc", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("non-numeric job id = %d, want 400", rec.Code)
	}

	// Validate: model plus measured smoke solve.
	var v validateResponse
	rec = do(t, s, "POST", "/api/v1/clusters/"+id+"/validate", `{"smoke_n":96}`, &v)
	if rec.Code != http.StatusOK {
		t.Fatalf("validate: %d %s", rec.Code, rec.Body.String())
	}
	if v.N <= 0 || v.RmaxGF <= 0 || !v.SmokeRun || !v.SmokePass || v.SmokeN != 96 {
		t.Fatalf("validate = %+v", v)
	}
	if rec := do(t, s, "POST", "/api/v1/clusters/"+id+"/validate", `{"smoke_n":9999}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized smoke_n = %d, want 400", rec.Code)
	}

	// Updates: a report per node; bad policies are rejected.
	var u updatesInfo
	rec = do(t, s, "GET", "/api/v1/clusters/"+id+"/updates", "", &u)
	if rec.Code != http.StatusOK || u.Policy != "notify" || len(u.Nodes) != 6 {
		t.Fatalf("updates: %d %+v", rec.Code, u)
	}
	if rec := do(t, s, "GET", "/api/v1/clusters/"+id+"/updates?policy=yolo", "", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad policy = %d, want 400", rec.Code)
	}

	// Job counts surface on the cluster summary.
	do(t, s, "GET", "/api/v1/clusters/"+id, "", &info)
	if info.JobsDone != 2 || info.JobsRunning != 0 || info.JobsQueued != 0 {
		t.Fatalf("job counts = %+v", info)
	}

	// Deleting the deployment removes the cluster view with it.
	if rec := do(t, s, "DELETE", "/api/v1/deployments/"+id, "", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete deployment: %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/api/v1/clusters/"+id, "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("cluster after delete = %d, want 404", rec.Code)
	}
}

// TestClusterAdvanceValidation rejects malformed and unbounded advances.
func TestClusterAdvanceValidation(t *testing.T) {
	s := newTestServer(t)
	id := deployReady(t, s, `{"cluster":"littlefe","parallelism":4}`)
	for _, body := range []string{`{}`, `{"duration":"0s"}`, `{"duration":"-1h"}`, `{"duration":"bogus"}`, `{"duration":"2160h1m"}`} {
		if rec := do(t, s, "POST", "/api/v1/clusters/"+id+"/advance", body, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("advance %s = %d, want 400", body, rec.Code)
		}
	}
}

// TestClusterJobsConcurrentREST hammers one ready cluster's day-2 routes
// from many goroutines — the production shape. Run with -race.
func TestClusterJobsConcurrentREST(t *testing.T) {
	s := newTestServer(t)
	id := deployReady(t, s, `{"cluster":"littlefe","parallelism":4}`)
	base := "/api/v1/clusters/" + id
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := httptest.NewRequest("POST", base+"/jobs",
					strings.NewReader(`{"name":"spin","user":"u","cores":1,"walltime":"30m","runtime":"5m"}`))
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			req := httptest.NewRequest("POST", base+"/advance", strings.NewReader(`{"duration":"10m"}`))
			s.Handler().ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	for _, path := range []string{base, base + "/jobs", base + "/metrics", base + "/alerts"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", path, nil)
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}(path)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("goroutines did not finish")
	}
	// All 60 submissions must be accounted for.
	var list struct {
		Count int `json:"count"`
	}
	do(t, s, "GET", base+"/jobs", "", &list)
	if list.Count != 60 {
		t.Fatalf("jobs accounted = %d, want 60", list.Count)
	}
}

// TestXNITClusterUpdates exercises the day-2 surface of an adopted
// (vendor + XNIT) cluster: the update check runs over the attached XSEDE
// repository.
func TestXNITClusterUpdates(t *testing.T) {
	s := newTestServer(t)
	id := deployReady(t, s, `{"cluster":"limulus","path":"xnit","scheduler":"torque","profiles":["compilers"]}`)
	var u updatesInfo
	rec := do(t, s, "GET", "/api/v1/clusters/"+id+"/updates", "", &u)
	if rec.Code != http.StatusOK {
		t.Fatalf("updates: %d %s", rec.Code, rec.Body.String())
	}
	if len(u.Nodes) == 0 {
		t.Fatal("no per-node update reports")
	}
	for node, nu := range u.Nodes {
		if nu.Summary == "" {
			t.Errorf("node %s has an empty update summary", node)
		}
	}
}
