package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"xcbc/pkg/xcbc"
)

// This file serves the fleet-scale surface: /api/v1/fleets mirrors
// pkg/xcbc's Fleet and RunScenario. A fleet is created (and by default
// provisioned) asynchronously with POST; scenario runs against a fleet are
// asynchronous jobs of their own, one at a time per fleet so the seeded
// trace stays deterministic.

// Caps on a single fleet creation request so one POST cannot commit the
// control plane to unbounded memory or CPU: member count, per-member
// compute nodes, and the product (total simulated nodes) are all bounded.
const (
	maxFleetMembers    = 2048
	maxNodesPerMember  = 256
	maxFleetTotalNodes = 16384
)

// fleetRecord is one managed fleet plus its scenario run history. tn is
// the owning tenant, so the run executor (shared by the live path and
// recovery) journals through the right shard's store.
type fleetRecord struct {
	ID      string
	Name    string
	Created time.Time
	Fleet   *xcbc.Fleet
	tn      *tenant

	mu      sync.Mutex
	runs    []*scenarioRun
	nextRun int
	runLive bool // a scenario is currently executing
}

// scenarioRun is one asynchronous scenario execution.
type scenarioRun struct {
	ID       string
	Scenario string
	Created  time.Time
	done     chan struct{}

	mu     sync.Mutex
	state  string // "running", "passed", "failed", "error"
	result *xcbc.ScenarioResult
	err    error
}

func (r *scenarioRun) snapshot() (state string, result *xcbc.ScenarioResult, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.result, r.err
}

// createFleetRequest provisions a new fleet of simulated clusters.
type createFleetRequest struct {
	Name        string `json:"name"`
	Members     int    `json:"members"`
	Cluster     string `json:"cluster"`
	Nodes       int    `json:"nodes"`
	Scheduler   string `json:"scheduler"`
	Parallelism int    `json:"parallelism"`
	Retries     int    `json:"retries"`
	Workers     int    `json:"workers"`
	// Provision defaults to true; set false to create the fleet resource
	// without starting builds (a scenario's provision phase can start them
	// later).
	Provision *bool `json:"provision"`
}

// fleetMemberInfo is the JSON shape of one fleet member.
type fleetMemberInfo struct {
	ID    string `json:"id"`
	Index int    `json:"index"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// fleetInfo is the JSON shape of one fleet.
type fleetInfo struct {
	ID        string            `json:"id"`
	Name      string            `json:"name"`
	Created   time.Time         `json:"created"`
	Status    xcbc.FleetStatus  `json:"status"`
	Settled   bool              `json:"settled"`
	Scenarios int               `json:"scenarios"`
	Members   []fleetMemberInfo `json:"members,omitempty"`
}

func (s *Server) fleetInfoOf(fr *fleetRecord, withMembers bool) fleetInfo {
	st := fr.Fleet.Status()
	fr.mu.Lock()
	runs := len(fr.runs)
	fr.mu.Unlock()
	info := fleetInfo{
		ID: fr.ID, Name: fr.Name, Created: fr.Created,
		Status: st, Settled: st.Settled(), Scenarios: runs,
	}
	if withMembers {
		for _, m := range fr.Fleet.Members() {
			mi := fleetMemberInfo{ID: m.ID(), Index: m.Index(), State: string(m.Status())}
			if err := m.Err(); err != nil {
				mi.Error = err.Error()
			}
			info.Members = append(info.Members, mi)
		}
	}
	return info
}

func lookupFleet(tn *tenant, id string) (*fleetRecord, bool) {
	tn.mu.RLock()
	fr, ok := tn.fleets[id]
	tn.mu.RUnlock()
	return fr, ok
}

func (s *Server) handleFleets(w http.ResponseWriter, r *http.Request) {
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tn := s.tenant(r)
	tn.mu.RLock()
	ids := make([]string, 0, len(tn.fleets))
	for id := range tn.fleets { //detlint:ordered pageIDs sorts before any ID is used
		ids = append(ids, id)
	}
	ids, next := pageIDs(ids, pg)
	frs := make([]*fleetRecord, 0, len(ids))
	for _, id := range ids {
		frs = append(frs, tn.fleets[id])
	}
	tn.mu.RUnlock()
	out := make([]fleetInfo, 0, len(frs))
	for _, fr := range frs {
		out = append(out, s.fleetInfoOf(fr, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"fleets": out, "count": len(out), "next_cursor": next})
}

// handleCreateFleet validates the request synchronously, then starts
// provisioning in the background and answers 202 Accepted with the fleet
// in its initial state.
func (s *Server) handleCreateFleet(w http.ResponseWriter, r *http.Request) {
	var req createFleetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Members > maxFleetMembers {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("members exceeds the per-fleet cap of %d", maxFleetMembers))
		return
	}
	if req.Nodes > maxNodesPerMember {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("nodes exceeds the per-member cap of %d", maxNodesPerMember))
		return
	}
	// Catalog machines top out below 256 computes, so nodes==0 (as
	// cataloged) is already covered by the member cap.
	if req.Nodes > 0 && req.Members > 0 && req.Members*req.Nodes > maxFleetTotalNodes {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("members*nodes exceeds the fleet-wide cap of %d simulated nodes", maxFleetTotalNodes))
		return
	}
	tn := s.tenant(r)
	fl, err := xcbc.NewFleet(fleetSpecOf(req))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Builds must outlive this request; they stop via DELETE.
	provisioned := req.Provision == nil || *req.Provision
	if provisioned {
		if err := fl.Provision(context.Background()); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	tn.mu.Lock()
	// Quota check and insert share one critical section, so concurrent
	// creates cannot both squeeze under the cap.
	if max := tn.quotas.MaxFleets; max > 0 && len(tn.fleets) >= max {
		inUse := len(tn.fleets)
		tn.mu.Unlock()
		fl.Cancel()
		writeQuotaError(w, "fleets", max, inUse)
		return
	}
	tn.nextFleetID++
	fr := &fleetRecord{
		ID:      fmt.Sprintf("f%d", tn.nextFleetID),
		Name:    req.Name,
		Created: s.clock(),
		Fleet:   fl,
		tn:      tn,
	}
	tn.fleets[fr.ID] = fr
	tn.mu.Unlock()
	if tn.store != nil {
		tn.store.emit(recFleetCreated, fleetCreatedRec{
			ID: fr.ID, Name: req.Name, Req: req, Created: fr.Created, Provisioned: provisioned,
		})
		tn.store.attachFleet(fr)
	}
	writeJSON(w, http.StatusAccepted, s.fleetInfoOf(fr, true))
}

// fleetSpecOf turns a create request into an SDK fleet spec; the create
// handler and recovery share it so a recovered fleet is sized exactly as
// the original was.
func fleetSpecOf(req createFleetRequest) xcbc.FleetSpec {
	return xcbc.FleetSpec{
		Name: req.Name, Members: req.Members, Cluster: req.Cluster,
		Nodes: req.Nodes, Scheduler: req.Scheduler,
		Parallelism: req.Parallelism, Retries: req.Retries, Workers: req.Workers,
	}
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	fr, ok := lookupFleet(s.tenant(r), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown fleet")
		return
	}
	writeJSON(w, http.StatusOK, s.fleetInfoOf(fr, true))
}

// handleDeleteFleet mirrors the deployment contract: an unsettled fleet is
// cancelled (202, record kept so the cancellation can be observed); a
// settled one is removed (204). A fleet with a scenario run still
// executing cannot be removed — deleting it would orphan the run and its
// trace — so that answers 409 until the run settles.
func (s *Server) handleDeleteFleet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tn := s.tenant(r)
	tn.mu.Lock()
	fr, ok := tn.fleets[id]
	if ok {
		fr.mu.Lock()
		live := fr.runLive
		fr.mu.Unlock()
		if live {
			tn.mu.Unlock()
			writeError(w, http.StatusConflict,
				"a scenario is still running on this fleet; wait for it to settle before deleting")
			return
		}
		if fr.Fleet.Status().Settled() {
			delete(tn.fleets, id)
			tn.mu.Unlock()
			if tn.store != nil {
				fr.Fleet.SetJournalSink(nil)
				tn.store.emit(recFleetDeleted, idRec{ID: id})
			}
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	tn.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown fleet")
		return
	}
	fr.Fleet.Cancel()
	writeJSON(w, http.StatusAccepted, s.fleetInfoOf(fr, false))
}

// runScenarioRequest starts a scenario against a fleet: either a built-in
// by name, or an inline scenario document.
type runScenarioRequest struct {
	Name     string          `json:"name"`     // built-in scenario name
	Scenario json.RawMessage `json:"scenario"` // or an inline script
}

// scenarioRunInfo is the JSON shape of one scenario run. Events carries
// the trace slice requested via ?cursor=N once the run settles.
type scenarioRunInfo struct {
	ID         string              `json:"id"`
	Scenario   string              `json:"scenario"`
	State      string              `json:"state"`
	Created    time.Time           `json:"created"`
	Error      string              `json:"error,omitempty"`
	Passed     bool                `json:"passed"`
	Violations []string            `json:"violations,omitempty"`
	Stats      *xcbc.ScenarioStats `json:"stats,omitempty"`
	Events     []xcbc.TraceEvent   `json:"events,omitempty"`
	NextCursor int                 `json:"next_cursor"`
}

func runInfoOf(run *scenarioRun, withEvents bool, pg page) scenarioRunInfo {
	state, result, err := run.snapshot()
	info := scenarioRunInfo{
		ID: run.ID, Scenario: run.Scenario, State: state, Created: run.Created,
	}
	if err != nil {
		info.Error = err.Error()
	}
	if result != nil {
		info.Passed = result.Passed()
		info.Violations = result.Violations()
		st := result.Stats()
		info.Stats = &st
		trace := result.Trace()
		info.NextCursor = len(trace)
		if withEvents {
			cursor := pg.cursor
			if cursor > len(trace) {
				cursor = len(trace)
			}
			end := len(trace)
			if pg.limit > 0 && cursor+pg.limit < end {
				end = cursor + pg.limit
			}
			info.Events = trace[cursor:end]
			info.NextCursor = end
		}
	}
	return info
}

// handleRunScenario starts one scenario run on a fleet: 202 Accepted with
// the run in state "running". One run at a time per fleet — concurrent
// scenarios would interleave day-2 operations and break the seeded trace —
// so a second request while one is live answers 409 Conflict.
func (s *Server) handleRunScenario(w http.ResponseWriter, r *http.Request) {
	tn := s.tenant(r)
	fr, ok := lookupFleet(tn, r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown fleet")
		return
	}
	var req runScenarioRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var sc *xcbc.Scenario
	var err error
	switch {
	case req.Name != "" && len(req.Scenario) > 0:
		writeError(w, http.StatusBadRequest, "give either a built-in name or an inline scenario, not both")
		return
	case req.Name != "":
		sc, err = xcbc.BuiltinScenario(req.Name)
		if errors.Is(err, xcbc.ErrUnknownScenario) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
	case len(req.Scenario) > 0:
		sc, err = xcbc.LoadScenario(req.Scenario)
	default:
		writeError(w, http.StatusBadRequest, "name or scenario is required")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if sc.Members() != fr.Fleet.Len() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("scenario wants %d members but fleet %s has %d", sc.Members(), fr.ID, fr.Fleet.Len()))
		return
	}
	if sc.RequiresFreshFleet() && fr.Fleet.Provisioned() {
		writeError(w, http.StatusBadRequest,
			"scenario arms kickstart faults; run it on a fleet created with \"provision\": false whose builds have not started")
		return
	}

	fr.mu.Lock()
	if fr.runLive {
		fr.mu.Unlock()
		writeError(w, http.StatusConflict, "a scenario is already running on this fleet; wait for it to settle")
		return
	}
	fr.runLive = true
	fr.nextRun++
	run := &scenarioRun{
		ID:       fmt.Sprintf("s%d", fr.nextRun),
		Scenario: sc.Name(),
		Created:  s.clock(),
		state:    "running",
		done:     make(chan struct{}),
	}
	fr.runs = append(fr.runs, run)
	fr.mu.Unlock()

	if tn.store != nil {
		doc, err := sc.JSON()
		if err != nil {
			doc = req.Scenario // inline doc as submitted; never nil for builtins
		}
		tn.store.emit(recScenarioStarted, scenarioStartedRec{
			FleetID: fr.ID, RunID: run.ID, Name: sc.Name(),
			Scenario: doc, Created: run.Created,
		})
	}
	go s.executeRun(fr, run, sc, nil)
	writeJSON(w, http.StatusAccepted, runInfoOf(run, false, page{}))
}

// executeRun drives one scenario run to settlement. The live handler
// calls it on a fresh goroutine; recovery calls it synchronously, with a
// replay target, to re-run a scenario that was in flight at a crash — in
// that case the regenerated trace's rolling hash must reproduce the
// recorded hash at the recorded cursor, or the run settles as "error"
// rather than presenting a trace the crashed server never produced.
func (s *Server) executeRun(fr *fleetRecord, run *scenarioRun, sc *xcbc.Scenario, target *replayTarget) {
	st := fr.tn.store
	var obs func(xcbc.TraceEvent)
	var got uint64
	var reached bool
	if st != nil {
		th := newTraceHash()
		obs = func(ev xcbc.TraceEvent) {
			cursor, sum := th.add(ev)
			if target != nil && cursor == target.cursor {
				got, reached = sum, true
			}
			st.emit(recScenarioProgress, scenarioProgressRec{
				FleetID: fr.ID, RunID: run.ID, Cursor: cursor, Hash: sum,
			})
		}
	}
	result, err := fr.Fleet.RunScenarioObserved(context.Background(), sc, obs)
	if err == nil && target != nil && target.cursor > 0 && (!reached || got != target.hash) {
		err = fmt.Errorf("%w at recorded cursor %d", errReplayDiverged, target.cursor)
		result = nil
	}
	run.mu.Lock()
	switch {
	case err != nil:
		run.state, run.err = "error", err
	case result.Passed():
		run.state, run.result = "passed", result
	default:
		run.state, run.result = "failed", result
	}
	state := run.state
	var errMsg string
	if run.err != nil {
		errMsg = run.err.Error()
	}
	run.mu.Unlock()
	fr.mu.Lock()
	fr.runLive = false
	fr.mu.Unlock()
	if st != nil {
		rec := scenarioSettledRec{FleetID: fr.ID, RunID: run.ID, State: state, Error: errMsg}
		if result != nil {
			if data, jerr := result.ResultJSON(); jerr == nil {
				rec.Result = data
			}
		}
		st.emit(recScenarioSettled, rec)
		// A provision phase may have built the fleet's members mid-run;
		// record that so recovery re-provisions before restoring results.
		if fr.Fleet.Provisioned() {
			st.emit(recFleetProvisioned, idRec{ID: fr.ID})
		}
	}
	close(run.done)
}

func (s *Server) lookupRun(fr *fleetRecord, sid string) (*scenarioRun, bool) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for _, run := range fr.runs {
		if run.ID == sid {
			return run, true
		}
	}
	return nil, false
}

func (s *Server) handleScenarioRuns(w http.ResponseWriter, r *http.Request) {
	fr, ok := lookupFleet(s.tenant(r), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown fleet")
		return
	}
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	fr.mu.Lock()
	runs := append([]*scenarioRun(nil), fr.runs...)
	fr.mu.Unlock()
	// Runs are appended in creation order with ascending numeric IDs, so
	// the slice is already cursor-ordered.
	out := make([]scenarioRunInfo, 0, min(len(runs), pg.limit))
	next := pg.cursor
	for _, run := range runs {
		n := numSuffix(run.ID)
		if n <= pg.cursor {
			continue
		}
		if len(out) >= pg.limit {
			break
		}
		out = append(out, runInfoOf(run, false, page{}))
		next = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": out, "count": len(out), "next_cursor": next})
}

// handleScenarioRun reports one run; ?cursor=N selects which trace events
// ride along once the run settles (pass back next_cursor to page).
func (s *Server) handleScenarioRun(w http.ResponseWriter, r *http.Request) {
	fr, ok := lookupFleet(s.tenant(r), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown fleet")
		return
	}
	run, ok := s.lookupRun(fr, r.PathValue("sid"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario run")
		return
	}
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, runInfoOf(run, true, pg))
}

// handleScenarios lists the built-in scenarios a client can POST by name.
// The list is immutable, so the cursor is a plain offset into it.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	type builtinInfo struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		Members     int    `json:"members"`
		Seed        int64  `json:"seed"`
	}
	names := xcbc.BuiltinScenarios()
	start := min(pg.cursor, len(names))
	end := min(start+pg.limit, len(names))
	out := make([]builtinInfo, 0, end-start)
	for _, name := range names[start:end] {
		sc, err := xcbc.BuiltinScenario(name)
		if err != nil {
			continue
		}
		out = append(out, builtinInfo{
			Name: sc.Name(), Description: sc.Description(),
			Members: sc.Members(), Seed: sc.Seed(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out, "count": len(out), "next_cursor": end})
}
