package api

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xcbc/internal/wal"
	"xcbc/pkg/xcbc"
)

// goldenTrace loads a builtin scenario's committed golden trace from the
// scenario engine's testdata.
func goldenTrace(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "..", "internal", "scenario", "testdata", "scenario-"+name+".golden"))
	if err != nil {
		t.Fatalf("golden trace: %v", err)
	}
	return data
}

// prefixHash computes the rolling FNV-1a digest the store records, over
// the first k lines of a JSONL trace — what a server that crashed after
// journaling k progress records would have on disk.
func prefixHash(trace []byte, k int) uint64 {
	h := fnv.New64a()
	lines := bytes.SplitAfter(trace, []byte("\n"))
	for i := 0; i < k; i++ {
		h.Write(lines[i])
	}
	return h.Sum64()
}

// synthesizeCrash writes the WAL a server would leave behind if it died
// mid-scenario: the fleet record (unprovisioned — the scenario's provision
// phase owns the builds), the run start with the full scenario document,
// and one progress record at cursor with the given trace-prefix hash.
func synthesizeCrash(t *testing.T, dir string, sc *xcbc.Scenario, cursor int, hash uint64) {
	t.Helper()
	spec := sc.FleetSpec()
	doc, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	created := time.Date(2015, 9, 8, 12, 0, 0, 0, time.UTC)
	records := []struct {
		typ string
		v   any
	}{
		{recFleetCreated, fleetCreatedRec{
			ID: "f1", Name: spec.Name, Created: created, Provisioned: false,
			Req: createFleetRequest{
				Name: spec.Name, Members: spec.Members, Cluster: spec.Cluster,
				Nodes: spec.Nodes, Scheduler: spec.Scheduler,
				Parallelism: spec.Parallelism, Retries: spec.Retries, Workers: spec.Workers,
			},
		}},
		{recScenarioStarted, scenarioStartedRec{
			FleetID: "f1", RunID: "s1", Name: sc.Name(), Scenario: doc, Created: created,
		}},
		{recScenarioProgress, scenarioProgressRec{
			FleetID: "f1", RunID: "s1", Cursor: cursor, Hash: hash,
		}},
	}
	for _, r := range records {
		if _, err := l.AppendJSON(r.typ, r.v); err != nil {
			t.Fatalf("append %s: %v", r.typ, err)
		}
	}
}

// recoveredRun digs the single scenario run out of a recovered server.
func recoveredRun(t *testing.T, s *Server) *scenarioRun {
	t.Helper()
	fr, ok := lookupFleet(s.openTenant, "f1")
	if !ok {
		t.Fatal("fleet f1 not recovered")
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if len(fr.runs) != 1 {
		t.Fatalf("recovered %d runs, want 1", len(fr.runs))
	}
	return fr.runs[0]
}

// TestReplayOracleGoldenTraces is the durability subsystem's end-to-end
// oracle: for each builtin scenario, synthesize the WAL of a server that
// crashed partway through the run, recover, and require the replayed run
// to reproduce the committed golden trace byte-for-byte — with the rolling
// prefix hash verified at the recorded cursor along the way.
func TestReplayOracleGoldenTraces(t *testing.T) {
	for _, name := range xcbc.BuiltinScenarios() {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name != "rolling-update" {
				t.Skip("large fleet replay skipped in short mode")
			}
			golden := goldenTrace(t, name)
			total := bytes.Count(golden, []byte("\n"))
			cursor := total / 2 // the crash landed mid-run
			sc, err := xcbc.BuiltinScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			synthesizeCrash(t, dir, sc, cursor, prefixHash(golden, cursor))

			s, rep := openDurable(t, dir)
			defer s.Close()
			if rep.Fleets != 1 || rep.Replayed != 1 || rep.ReplayMismatches != 0 {
				t.Fatalf("recovery report = %+v, want 1 replayed run with no mismatch", rep)
			}
			run := recoveredRun(t, s)
			state, result, runErr := run.snapshot()
			if state != "passed" || runErr != nil {
				t.Fatalf("replayed run settled %q (%v), want passed", state, runErr)
			}
			if trace := result.TraceJSONL(); !bytes.Equal(trace, golden) {
				t.Fatalf("replayed trace diverged from golden (%d vs %d bytes)", len(trace), len(golden))
			}

			// The replay settled and journaled its result: a second recovery
			// restores the run without re-running the scenario.
			s.Close()
			s2, rep2 := openDurable(t, dir)
			defer s2.Close()
			if rep2.Runs != 1 || rep2.Replayed != 0 {
				t.Fatalf("second recovery = %+v, want restored (not replayed) run", rep2)
			}
			run2 := recoveredRun(t, s2)
			_, result2, _ := run2.snapshot()
			if !bytes.Equal(result2.TraceJSONL(), golden) {
				t.Fatal("restored trace diverged from golden after second recovery")
			}
		})
	}
}

// TestReplayDivergenceDetected flips one bit of the recorded hash: the
// replay regenerates the true trace, fails verification at the cursor, and
// the run settles "error" instead of presenting an unverified trace.
func TestReplayDivergenceDetected(t *testing.T) {
	golden := goldenTrace(t, "rolling-update")
	cursor := bytes.Count(golden, []byte("\n")) / 2
	sc, err := xcbc.BuiltinScenario("rolling-update")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	synthesizeCrash(t, dir, sc, cursor, prefixHash(golden, cursor)^1)

	s, rep := openDurable(t, dir)
	defer s.Close()
	if rep.Replayed != 1 || rep.ReplayMismatches != 1 {
		t.Fatalf("recovery report = %+v, want 1 replay mismatch", rep)
	}
	run := recoveredRun(t, s)
	state, _, runErr := run.snapshot()
	if state != "error" || runErr == nil {
		t.Fatalf("diverged run settled %q (%v), want error", state, runErr)
	}
	var info scenarioRunInfo
	if rec := do(t, s, "GET", "/api/v1/fleets/f1/scenarios/s1", "", &info); rec.Code != 200 {
		t.Fatalf("GET diverged run: %d", rec.Code)
	}
	if info.State != "error" || info.Error == "" {
		t.Fatalf("diverged run info = %+v", info)
	}
}

// TestOpenRepairsTornTail garbles the live segment's tail — the on-disk
// state a power cut mid-write leaves — and verifies Open repairs it: the
// torn frame is dropped, the report says so, and the records before the
// tear recover intact.
func TestOpenRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	s1, _ := openDurable(t, dir)
	rec := do(t, s1, "POST", "/api/v1/fleets", `{"name":"torn","members":2,"nodes":2,"workers":2,"provision":false}`, nil)
	if rec.Code != 202 {
		t.Fatalf("create fleet: %d %s", rec.Code, rec.Body.String())
	}
	s1.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segment found: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x2a\x00\x00\x00torn-frame-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rep := openDurable(t, dir)
	defer s2.Close()
	if !rep.Repaired || rep.DroppedBytes == 0 {
		t.Fatalf("recovery report = %+v, want repaired tail", rep)
	}
	if rep.Fleets != 1 {
		t.Fatalf("fleet lost to the torn tail: %+v", rep)
	}
	var fl fleetInfo
	if rc := do(t, s2, "GET", "/api/v1/fleets/f1", "", &fl); rc.Code != 200 {
		t.Fatalf("recovered fleet: %d", rc.Code)
	}
	if fl.Name != "torn" {
		t.Fatalf("recovered fleet = %+v", fl)
	}
}

// TestCrashRestartSeeds drives many seeded create/crash/recover cycles —
// the API-level companion to internal/wal's frame-level crash injection.
// Every recovery must succeed with invariants intact: recovered resources
// match what was journaled, and no WAL read ever surfaces corruption.
func TestCrashRestartSeeds(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			deps := 1 + seed%3
			s1, _ := openDurable(t, dir, func(c *Config) { c.SnapshotEvery = 2 + seed })
			for i := 0; i < deps; i++ {
				body := fmt.Sprintf(`{"cluster":"littlefe","parallelism":%d}`, 1+seed%4)
				if rec := do(t, s1, "POST", "/api/v1/deployments", body, nil); rec.Code != 202 {
					t.Fatalf("create %d: %d", i, rec.Code)
				}
			}
			// Let an arbitrary, seed-dependent amount of journal traffic land
			// before the crash; some builds settle, some do not.
			time.Sleep(time.Duration(seed) * 2 * time.Millisecond)
			s1.Close()

			s2, rep := openDurable(t, dir)
			if rep.Deployments != deps {
				t.Fatalf("recovered %d deployments, want %d (report %+v)", rep.Deployments, deps, rep)
			}
			if rep.Rebuilt+rep.Archived+rep.Interrupted != deps {
				t.Fatalf("recovery did not reconcile every deployment: %+v", rep)
			}
			for i := 1; i <= deps; i++ {
				var info deploymentInfo
				id := fmt.Sprintf("d%d", i)
				if rec := do(t, s2, "GET", "/api/v1/deployments/"+id, "", &info); rec.Code != 200 {
					t.Fatalf("GET %s: %d", id, rec.Code)
				}
				if info.State != "ready" && info.State != "failed" {
					t.Fatalf("%s recovered in non-terminal state %q", id, info.State)
				}
			}
			s2.Close()

			// And once more: the post-recovery log must itself recover.
			s3, rep3 := openDurable(t, dir)
			if rep3.Deployments != deps || rep3.Interrupted != 0 {
				t.Fatalf("third open = %+v, want %d settled deployments", rep3, deps)
			}
			s3.Close()
		})
	}
}
