package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"xcbc/pkg/xcbc"
)

// This file serves the generative-chaos surface: /api/v1/campaigns wraps
// pkg/xcbc's RunCampaign. A campaign is an asynchronous sweep of generated
// scenarios — POST validates the spec and answers 202 Accepted; clients
// poll GET for progress (per-seed counters land in seed order) and, once
// seeds fail, for the shrunk repro scripts. Every per-seed outcome is
// journaled through the durable store, so a campaign interrupted by a
// crash reports its partial results after restart instead of vanishing.

// Caps on a single campaign request so one POST cannot commit the control
// plane to unbounded CPU: each seed costs two full scenario runs (the
// determinism check) plus a WAL recovery round trip.
const (
	maxCampaignSeeds   = 4096
	maxCampaignWorkers = 32
)

// campaignRecord is one managed campaign sweep.
type campaignRecord struct {
	ID      string
	Created time.Time
	Spec    xcbc.CampaignSpec
	tn      *tenant
	done    chan struct{}

	mu        sync.Mutex
	state     string // "running", "passed", "failed", "error", "interrupted"
	errMsg    string
	completed int
	passed    int
	failed    int
	errs      int
	failures  []xcbc.CampaignFailure
}

// campaignInfo is the JSON shape of one campaign. Counters advance in
// seed order while the sweep runs; Failures carries every failing seed's
// violations and minimized repro script.
type campaignInfo struct {
	ID           string                 `json:"id"`
	Created      time.Time              `json:"created"`
	State        string                 `json:"state"`
	Error        string                 `json:"error,omitempty"`
	Seeds        int                    `json:"seeds"`
	StartSeed    int64                  `json:"start_seed"`
	Workers      int                    `json:"workers,omitempty"`
	ShrinkBudget int                    `json:"shrink_budget,omitempty"`
	Completed    int                    `json:"completed"`
	Passed       int                    `json:"passed"`
	Failed       int                    `json:"failed"`
	Errors       int                    `json:"errors"`
	Failures     []xcbc.CampaignFailure `json:"failures,omitempty"`
}

func campaignInfoOf(cr *campaignRecord) campaignInfo {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return campaignInfo{
		ID: cr.ID, Created: cr.Created, State: cr.state, Error: cr.errMsg,
		Seeds: cr.Spec.Seeds, StartSeed: cr.Spec.StartSeed,
		Workers: cr.Spec.Workers, ShrinkBudget: cr.Spec.ShrinkBudget,
		Completed: cr.completed, Passed: cr.passed,
		Failed: cr.failed, Errors: cr.errs,
		Failures: append([]xcbc.CampaignFailure(nil), cr.failures...),
	}
}

// absorb folds one seed outcome into the record's counters.
func (cr *campaignRecord) absorb(out xcbc.CampaignSeedOutcome) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.completed++
	switch out.State {
	case xcbc.CampaignSeedPassed:
		cr.passed++
	case xcbc.CampaignSeedFailed:
		cr.failed++
		if out.Failure != nil {
			cr.failures = append(cr.failures, *out.Failure)
		}
	default:
		cr.errs++
	}
}

// settleState reduces final counters to a campaign state: "passed" only
// when every seed passed; any violation makes it "failed"; mechanical
// trouble (cancellation, seeds that errored) makes it "error".
func settleState(failed, errs int, err error) (string, string) {
	switch {
	case err != nil:
		return "error", err.Error()
	case failed > 0:
		return "failed", ""
	case errs > 0:
		return "error", "some seeds did not complete"
	}
	return "passed", ""
}

// createCampaignRequest starts a sweep of generated scenarios.
type createCampaignRequest struct {
	Seeds        int   `json:"seeds"`
	StartSeed    int64 `json:"start_seed"`
	Workers      int   `json:"workers"`
	ShrinkBudget int   `json:"shrink_budget"`
}

func lookupCampaign(tn *tenant, id string) (*campaignRecord, bool) {
	tn.mu.RLock()
	cr, ok := tn.campaigns[id]
	tn.mu.RUnlock()
	return cr, ok
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	pg, err := parsePage(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tn := s.tenant(r)
	tn.mu.RLock()
	ids := make([]string, 0, len(tn.campaigns))
	for id := range tn.campaigns { //detlint:ordered pageIDs sorts before any ID is used
		ids = append(ids, id)
	}
	ids, next := pageIDs(ids, pg)
	crs := make([]*campaignRecord, 0, len(ids))
	for _, id := range ids {
		crs = append(crs, tn.campaigns[id])
	}
	tn.mu.RUnlock()
	out := make([]campaignInfo, 0, len(crs))
	for _, cr := range crs {
		out = append(out, campaignInfoOf(cr))
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out, "count": len(out), "next_cursor": next})
}

// handleCreateCampaign validates the spec synchronously, then starts the
// sweep in the background and answers 202 Accepted with the campaign in
// state "running". Clients poll GET /api/v1/campaigns/{id}.
func (s *Server) handleCreateCampaign(w http.ResponseWriter, r *http.Request) {
	var req createCampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Seeds > maxCampaignSeeds {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("seeds exceeds the per-campaign cap of %d", maxCampaignSeeds))
		return
	}
	if req.Workers > maxCampaignWorkers {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("workers exceeds the cap of %d", maxCampaignWorkers))
		return
	}
	spec := xcbc.CampaignSpec{
		Seeds: req.Seeds, StartSeed: req.StartSeed,
		Workers: req.Workers, ShrinkBudget: req.ShrinkBudget,
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tn := s.tenant(r)
	tn.mu.Lock()
	// Quota check and insert share one critical section, so concurrent
	// creates cannot both squeeze under the cap.
	if max := tn.quotas.MaxCampaigns; max > 0 && len(tn.campaigns) >= max {
		inUse := len(tn.campaigns)
		tn.mu.Unlock()
		writeQuotaError(w, "campaigns", max, inUse)
		return
	}
	tn.nextCampaignID++
	cr := &campaignRecord{
		ID:      fmt.Sprintf("c%d", tn.nextCampaignID),
		Created: s.clock(),
		Spec:    spec,
		tn:      tn,
		state:   "running",
		done:    make(chan struct{}),
	}
	tn.campaigns[cr.ID] = cr
	tn.mu.Unlock()
	if tn.store != nil {
		tn.store.emit(recCampaignStarted, campaignStartedRec{
			ID: cr.ID, Spec: spec, Created: cr.Created,
		})
	}
	go s.executeCampaign(cr)
	writeJSON(w, http.StatusAccepted, campaignInfoOf(cr))
}

// executeCampaign drives one campaign to settlement on its own goroutine.
// The per-seed observer runs on the campaign's goroutine in seed order, so
// counters (and the journal records they emit) advance deterministically
// even though the pool interleaves the underlying runs.
func (s *Server) executeCampaign(cr *campaignRecord) {
	st := cr.tn.store
	spec := cr.Spec
	if spec.CheckHook == nil {
		spec.CheckHook = s.campaignHook
	}
	res, err := xcbc.RunCampaignObserved(context.Background(), spec,
		func(out xcbc.CampaignSeedOutcome) {
			cr.absorb(out)
			if st != nil {
				st.emit(recCampaignSeed, campaignSeedRec{ID: cr.ID, Outcome: out})
			}
		})
	var state, errMsg string
	if res == nil {
		state, errMsg = "error", err.Error()
	} else {
		state, errMsg = settleState(res.Failed, res.Errors, err)
	}
	cr.mu.Lock()
	cr.state, cr.errMsg = state, errMsg
	cr.mu.Unlock()
	if st != nil {
		st.emit(recCampaignSettled, campaignSettledRec{ID: cr.ID, State: state, Error: errMsg})
	}
	close(cr.done)
}

// handleCampaign reports one campaign's progress — and, once seeds fail,
// the shrunk repros.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	cr, ok := lookupCampaign(s.tenant(r), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, campaignInfoOf(cr))
}

// recoverCampaign materializes one campaign from its mirror entry. A
// campaign that settled before the crash reloads its recorded outcomes; a
// campaign in flight at the crash settles as "interrupted" — its journaled
// per-seed outcomes are the partial result, and the sweep is not re-run
// (generated seeds are cheap to re-sweep explicitly; silently burning CPU
// on restart is not this store's call to make).
func (st *store) recoverCampaign(m campaignMirror, report *RecoveryReport) *campaignRecord {
	cr := &campaignRecord{
		ID:      m.Started.ID,
		Created: m.Started.Created,
		Spec:    m.Started.Spec,
		tn:      st.tn,
		done:    make(chan struct{}),
	}
	for _, out := range m.Outcomes {
		cr.absorb(out)
	}
	if m.State == "" {
		msg := fmt.Sprintf("interrupted: the server terminated after %d of %d seeds", cr.completed, cr.Spec.Seeds)
		cr.state, cr.errMsg = "interrupted", msg
		st.emit(recCampaignSettled, campaignSettledRec{ID: cr.ID, State: cr.state, Error: msg})
		report.CampaignsInterrupted++
	} else {
		cr.state, cr.errMsg = m.State, m.Error
	}
	close(cr.done)
	report.Campaigns++
	return cr
}
