package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getJSON(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec
}

// waitFleetSettled polls until the fleet reports settled.
func waitFleetSettled(t *testing.T, h http.Handler, id string) fleetInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info fleetInfo
		rec := getJSON(t, h, "/api/v1/fleets/"+id, &info)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET fleet: %d %s", rec.Code, rec.Body.String())
		}
		if info.Settled {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("fleet never settled")
	return fleetInfo{}
}

func TestFleetLifecycleOverREST(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	// Validation failures are synchronous 400s, including the resource
	// caps that keep one POST from exhausting the control plane.
	for _, body := range []string{
		`{`,
		`{"members": 0}`,
		`{"members": -2}`,
		`{"members": 4096}`,
		`{"members": 2, "cluster": "deep-thought"}`,
		`{"members": 2, "nodes": 100000}`,
		`{"members": 2000, "nodes": 100}`,
	} {
		if rec := postJSON(t, h, "/api/v1/fleets", body); rec.Code != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, rec.Code)
		}
	}

	var created fleetInfo
	rec := postJSON(t, h, "/api/v1/fleets", `{"name":"campus","members":3,"nodes":2,"parallelism":2,"workers":3}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST fleets = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Status.Members != 3 || len(created.Members) != 3 {
		t.Fatalf("created = %+v", created)
	}

	info := waitFleetSettled(t, h, created.ID)
	if info.Status.Ready != 3 {
		t.Fatalf("settled fleet = %+v, want 3 ready", info.Status)
	}
	for _, m := range info.Members {
		if m.State != "ready" {
			t.Fatalf("member %s state %s", m.ID, m.State)
		}
	}

	// The list view includes it.
	var list struct {
		Fleets []fleetInfo `json:"fleets"`
	}
	getJSON(t, h, "/api/v1/fleets", &list)
	if len(list.Fleets) != 1 || list.Fleets[0].ID != created.ID {
		t.Fatalf("list = %+v", list)
	}

	// Unknown fleet is 404.
	if rec := getJSON(t, h, "/api/v1/fleets/f999", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown fleet = %d", rec.Code)
	}

	// Settled fleet deletes with 204 and disappears.
	req := httptest.NewRequest("DELETE", "/api/v1/fleets/"+created.ID, nil)
	del := httptest.NewRecorder()
	h.ServeHTTP(del, req)
	if del.Code != http.StatusNoContent {
		t.Fatalf("DELETE settled fleet = %d", del.Code)
	}
	if rec := getJSON(t, h, "/api/v1/fleets/"+created.ID, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET deleted fleet = %d", rec.Code)
	}
}

func TestScenarioRunOverREST(t *testing.T) {
	s := New(Config{})
	h := s.Handler()

	// The built-in listing names campus-100 and friends.
	var builtins struct {
		Scenarios []struct {
			Name    string `json:"name"`
			Members int    `json:"members"`
		} `json:"scenarios"`
	}
	getJSON(t, h, "/api/v1/scenarios", &builtins)
	if len(builtins.Scenarios) < 3 {
		t.Fatalf("builtins = %+v", builtins)
	}

	// Create an unprovisioned fleet; the scenario's provision phase builds it.
	var created fleetInfo
	rec := postJSON(t, h, "/api/v1/fleets", `{"name":"chaos","members":2,"nodes":2,"workers":2,"provision":false}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST fleets = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}

	// Bad scenario requests.
	base := "/api/v1/fleets/" + created.ID + "/scenarios"
	for body, want := range map[string]int{
		`{}`:                         http.StatusBadRequest,
		`{"name":"zzz"}`:             http.StatusNotFound,
		`{"name":"campus-100"}`:      http.StatusBadRequest, // 100 members vs fleet of 2
		`{"scenario":{"name":"x"}}`:  http.StatusBadRequest,
		`{"name":"a","scenario":{}}`: http.StatusBadRequest,
		`{"scenario":{"name":"x","fleet":{"members":2},"phases":[{"kind":"warp"}]}}`: http.StatusBadRequest,
	} {
		if rec := postJSON(t, h, base, body); rec.Code != want {
			t.Fatalf("POST %s = %d, want %d: %s", body, rec.Code, want, rec.Body.String())
		}
	}

	inline := `{"scenario":{
		"name": "rest-smoke", "seed": 11,
		"fleet": {"members": 2, "nodes": 2, "workers": 2},
		"phases": [
			{"kind": "provision"},
			{"kind": "jobs", "count": 1, "cores": 1, "runtime": "10m"},
			{"kind": "metrics"},
			{"kind": "assert", "invariants": [{"name": "all-ready"}, {"name": "jobs-conserved"}]}
		]
	}}`
	rec = postJSON(t, h, base, inline)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST scenario = %d: %s", rec.Code, rec.Body.String())
	}
	var run scenarioRunInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &run); err != nil {
		t.Fatal(err)
	}
	if run.ID == "" || run.Scenario != "rest-smoke" || run.State != "running" {
		t.Fatalf("run = %+v", run)
	}

	// Poll the run until it settles and fetch the trace.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var got scenarioRunInfo
		if rec := getJSON(t, h, base+"/"+run.ID, &got); rec.Code != http.StatusOK {
			t.Fatalf("GET run = %d: %s", rec.Code, rec.Body.String())
		} else if got.State != "running" {
			if got.State != "passed" {
				t.Fatalf("run settled %s: %+v", got.State, got)
			}
			if got.Stats == nil || got.Stats.Ready != 2 || got.Stats.JobsSubmitted != 2 {
				t.Fatalf("stats = %+v", got.Stats)
			}
			if len(got.Events) == 0 || got.NextCursor != len(got.Events) {
				t.Fatalf("trace paging: %d events, next %d", len(got.Events), got.NextCursor)
			}
			// Cursor paging returns the tail.
			var page scenarioRunInfo
			getJSON(t, h, fmt.Sprintf("%s/%s?cursor=%d", base, run.ID, got.NextCursor-1), &page)
			if len(page.Events) != 1 {
				t.Fatalf("cursor page = %d events, want 1", len(page.Events))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scenario run never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The run list reports it, and unknown run IDs 404.
	var runs struct {
		Runs []scenarioRunInfo `json:"runs"`
	}
	getJSON(t, h, base, &runs)
	if len(runs.Runs) != 1 || runs.Runs[0].State != "passed" {
		t.Fatalf("runs = %+v", runs)
	}
	if rec := getJSON(t, h, base+"/s999", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown run = %d", rec.Code)
	}

	// The discovery document advertises the fleet routes.
	var index struct {
		Routes []struct {
			Path string `json:"path"`
		} `json:"routes"`
	}
	getJSON(t, h, "/api/v1", &index)
	found := false
	for _, r := range index.Routes {
		if r.Path == "/api/v1/fleets/{id}/scenarios/{sid}" {
			found = true
		}
	}
	if !found {
		t.Fatal("discovery document does not list the scenario-run route")
	}
}

func TestKickstartScenarioNeedsUnprovisionedFleet(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	// Default provision:true — builds start immediately, so a scenario
	// arming kickstart faults must be refused with a clear 400.
	rec := postJSON(t, h, "/api/v1/fleets", `{"members":1,"nodes":1,"workers":1}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST fleets = %d", rec.Code)
	}
	var created fleetInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	body := `{"scenario":{
		"name": "late-chaos", "seed": 1,
		"fleet": {"members": 1, "nodes": 1, "workers": 1},
		"phases": [
			{"kind": "fault", "fault": "kickstart", "probability": 0.5},
			{"kind": "provision"}
		]
	}}`
	rec = postJSON(t, h, "/api/v1/fleets/"+created.ID+"/scenarios", body)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "kickstart") {
		t.Fatalf("kickstart on provisioned fleet = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestConcurrentScenarioRunsRejected(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	rec := postJSON(t, h, "/api/v1/fleets", `{"members":2,"nodes":1,"workers":2,"provision":false}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST fleets = %d", rec.Code)
	}
	var created fleetInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	base := "/api/v1/fleets/" + created.ID + "/scenarios"
	inline := `{"scenario":{
		"name": "slow", "seed": 1,
		"fleet": {"members": 2, "nodes": 1, "workers": 2},
		"phases": [{"kind": "provision"}, {"kind": "assert", "invariants": [{"name": "all-ready"}]}]
	}}`
	if rec := postJSON(t, h, base, inline); rec.Code != http.StatusAccepted {
		t.Fatalf("first run = %d: %s", rec.Code, rec.Body.String())
	}
	// While the first run is live a second is a 409; after it settles the
	// fleet accepts another.
	second := postJSON(t, h, base, inline)
	if second.Code != http.StatusConflict && second.Code != http.StatusAccepted {
		t.Fatalf("second run = %d: %s", second.Code, second.Body.String())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var runs struct {
			Runs []scenarioRunInfo `json:"runs"`
		}
		getJSON(t, h, base, &runs)
		live := false
		for _, r := range runs.Runs {
			if r.State == "running" {
				live = true
			}
		}
		if !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runs never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec := postJSON(t, h, base, inline); rec.Code != http.StatusAccepted {
		t.Fatalf("run after settle = %d: %s", rec.Code, rec.Body.String())
	}
}
