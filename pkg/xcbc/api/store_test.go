package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"xcbc/pkg/xcbc"
)

// openDurable opens a server on dir and fails the test on error.
func openDurable(t *testing.T, dir string, mut ...func(*Config)) (*Server, *RecoveryReport) {
	t.Helper()
	cfg := Config{DataDir: dir}
	for _, m := range mut {
		m(&cfg)
	}
	s, rep, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rep
}

// TestDiscoveryAuditsStoreAndFleetRoutes audits the GET /api/v1 discovery
// document against the durability route and the whole fleet/scenario
// surface: every route a client would feature-detect must be advertised.
func TestDiscoveryAuditsStoreAndFleetRoutes(t *testing.T) {
	s := New(Config{})
	var doc struct {
		Routes []routeInfo `json:"routes"`
	}
	if rec := do(t, s, "GET", "/api/v1", "", &doc); rec.Code != http.StatusOK {
		t.Fatalf("discovery: %d", rec.Code)
	}
	seen := make(map[string]bool, len(doc.Routes))
	for _, r := range doc.Routes {
		seen[r.Method+" "+r.Path] = true
	}
	for _, want := range []string{
		"GET /api/v1/store",
		"GET /api/v1/scenarios",
		"GET /api/v1/fleets",
		"POST /api/v1/fleets",
		"GET /api/v1/fleets/{id}",
		"DELETE /api/v1/fleets/{id}",
		"POST /api/v1/fleets/{id}/scenarios",
		"GET /api/v1/fleets/{id}/scenarios",
		"GET /api/v1/fleets/{id}/scenarios/{sid}",
	} {
		if !seen[want] {
			t.Errorf("discovery missing route %s", want)
		}
	}
	// The document and the mux agree: every advertised route answers
	// something other than 404 for its method (a 404-advertising document
	// would send clients at routes that do not exist).
	if !seen["GET /api/v1/store"] {
		t.Fatal("store route not advertised")
	}
	if rec := do(t, s, "GET", "/api/v1/store", "", nil); rec.Code != http.StatusOK {
		t.Errorf("advertised store route answered %d", rec.Code)
	}
}

func TestNewPanicsOnDataDir(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with DataDir did not panic")
		}
	}()
	New(Config{DataDir: t.TempDir()})
}

// TestStoreStatusRoute pins GET /api/v1/store on both kinds of server: a
// memory-only server reports durable=false and nothing else; a durable one
// reports the data directory and WAL accounting.
func TestStoreStatusRoute(t *testing.T) {
	mem := New(Config{})
	var info storeInfo
	if rec := do(t, mem, "GET", "/api/v1/store", "", &info); rec.Code != http.StatusOK {
		t.Fatalf("store on memory server: %d", rec.Code)
	}
	if info.Durable || info.DataDir != "" {
		t.Fatalf("memory server store info = %+v", info)
	}

	dir := t.TempDir()
	s, _ := openDurable(t, dir)
	defer s.Close()
	do(t, s, "POST", "/api/v1/deployments", `{"cluster":"littlefe"}`, nil)
	if rec := do(t, s, "GET", "/api/v1/store", "", &info); rec.Code != http.StatusOK {
		t.Fatalf("store on durable server: %d", rec.Code)
	}
	if !info.Durable || info.DataDir != dir {
		t.Fatalf("durable store info = %+v", info)
	}
	if info.NextSeq < 1 || info.WALBytes <= 0 {
		t.Errorf("store info shows no WAL activity: %+v", info)
	}
}

// TestDurableDeploymentRestart is the core restart round-trip: deploy,
// operate the cluster, close, reopen the same directory, and verify the
// recovered deployment answers every view exactly as the original did.
func TestDurableDeploymentRestart(t *testing.T) {
	dir := t.TempDir()
	s1, rep := openDurable(t, dir)
	if rep.Deployments != 0 || rep.Fleets != 0 {
		t.Fatalf("fresh dir recovered %+v", rep)
	}

	var created deploymentInfo
	rec := do(t, s1, "POST", "/api/v1/deployments",
		`{"cluster":"littlefe","scheduler":"torque","parallelism":2}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	final, events := pollDeployment(t, s1, created.ID)
	if final.State != "ready" {
		t.Fatalf("settled %q: %s", final.State, final.Error)
	}

	// Day-2 operations a restart must replay: two submits, one cancel, a
	// clock advance, a metrics poll, and an update check.
	for _, op := range []struct{ method, path, body string }{
		{"POST", "/api/v1/clusters/d1/jobs", `{"name":"relax","user":"alice","cores":2,"walltime":"1h","runtime":"20m"}`},
		{"POST", "/api/v1/clusters/d1/jobs", `{"name":"blast","user":"bob","cores":1,"walltime":"30m","runtime":"10m"}`},
		{"DELETE", "/api/v1/clusters/d1/jobs/2", ""},
		{"POST", "/api/v1/clusters/d1/advance", `{"duration":"45m"}`},
		{"GET", "/api/v1/clusters/d1/metrics", ""},
		{"GET", "/api/v1/clusters/d1/updates", ""},
	} {
		if rec := do(t, s1, op.method, op.path, op.body, nil); rec.Code >= 300 {
			t.Fatalf("%s %s: %d %s", op.method, op.path, rec.Code, rec.Body.String())
		}
	}
	jobsBefore := do(t, s1, "GET", "/api/v1/clusters/d1/jobs", "", nil).Body.String()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, rep2 := openDurable(t, dir)
	defer s2.Close()
	if rep2.Deployments != 1 || rep2.Rebuilt != 1 || rep2.OpsReplayed != 6 {
		t.Fatalf("recovery report = %+v, want 1 deployment rebuilt with 6 ops", rep2)
	}
	var after deploymentInfo
	if rec := do(t, s2, "GET", "/api/v1/deployments/d1", "", &after); rec.Code != http.StatusOK {
		t.Fatalf("recovered deployment: %d", rec.Code)
	}
	if after.State != "ready" || after.Cluster != final.Cluster || after.Nodes != final.Nodes ||
		after.Scheduler != final.Scheduler || !after.Created.Equal(final.Created) {
		t.Fatalf("recovered = %+v, want %+v", after, final)
	}
	if len(after.Events) != len(events) {
		t.Errorf("recovered journal has %d events, original %d", len(after.Events), len(events))
	}
	jobsAfter := do(t, s2, "GET", "/api/v1/clusters/d1/jobs", "", nil).Body.String()
	if jobsAfter != jobsBefore {
		t.Errorf("replayed job state diverged:\nbefore: %s\nafter:  %s", jobsBefore, jobsAfter)
	}

	// ID allocation continues where it left off.
	var next deploymentInfo
	do(t, s2, "POST", "/api/v1/deployments", `{"cluster":"littlefe"}`, &next)
	if next.ID != "d2" {
		t.Errorf("next deployment ID = %q, want d2", next.ID)
	}
}

// TestDurableArchivedDeploymentRestart covers terminal non-ready builds: a
// failed deployment reloads as an archived record — state, error, and the
// complete journal — with day-2 routes answering 422, and its deletion
// persists across a further restart.
func TestDurableArchivedDeploymentRestart(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk on fire")
	s1, _ := openDurable(t, dir, func(c *Config) {
		c.DeployOptions = []xcbc.Option{xcbc.WithInstallHook(func(node string, attempt int) error {
			return boom
		})}
	})
	var created deploymentInfo
	do(t, s1, "POST", "/api/v1/deployments", `{"cluster":"littlefe"}`, &created)
	final, events := pollDeployment(t, s1, created.ID)
	if final.State != "failed" || final.Error == "" {
		t.Fatalf("settled %q (%s), want failed", final.State, final.Error)
	}
	s1.Close()

	s2, rep := openDurable(t, dir)
	if rep.Archived != 1 || rep.Rebuilt != 0 {
		t.Fatalf("recovery report = %+v, want 1 archived", rep)
	}
	var after deploymentInfo
	do(t, s2, "GET", "/api/v1/deployments/d1", "", &after)
	if after.State != "failed" || after.Error != final.Error {
		t.Fatalf("archived = state %q error %q, want %q / %q", after.State, after.Error, final.State, final.Error)
	}
	if len(after.Events) != len(events) {
		t.Errorf("archived journal has %d events, original %d", len(after.Events), len(events))
	}
	if rec := do(t, s2, "GET", "/api/v1/clusters/d1/jobs", "", nil); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("day-2 on archived failed build: %d, want 422", rec.Code)
	}
	if rec := do(t, s2, "DELETE", "/api/v1/deployments/d1", "", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete archived: %d", rec.Code)
	}
	s2.Close()

	s3, rep3 := openDurable(t, dir)
	defer s3.Close()
	if rep3.Deployments != 0 {
		t.Fatalf("deleted deployment came back: %+v", rep3)
	}
}

// TestDurableInterruptedDeployment kills the server mid-build. Without
// ResumeInterrupted the next open reconciles the deployment to a terminal
// failed (interrupted) record — and emits the settlement, so a third open
// sees an ordinary archived deployment.
func TestDurableInterruptedDeployment(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	s1, _ := openDurable(t, dir, func(c *Config) {
		c.DeployOptions = []xcbc.Option{xcbc.WithInstallHook(func(node string, attempt int) error {
			<-gate
			return nil
		})}
	})
	var created deploymentInfo
	rec := do(t, s1, "POST", "/api/v1/deployments", `{"cluster":"littlefe"}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	s1.Close() // the build is still gated: this is the crash
	release()

	s2, rep := openDurable(t, dir)
	if rep.Interrupted != 1 {
		t.Fatalf("recovery report = %+v, want 1 interrupted", rep)
	}
	var after deploymentInfo
	do(t, s2, "GET", "/api/v1/deployments/d1", "", &after)
	if after.State != "failed" || !strings.Contains(after.Error, "interrupted") {
		t.Fatalf("interrupted deployment = state %q error %q", after.State, after.Error)
	}
	if rec := do(t, s2, "GET", "/api/v1/clusters/d1/metrics", "", nil); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("day-2 on interrupted build: %d, want 422", rec.Code)
	}
	s2.Close()

	// The reconciliation was journaled: the third open archives it like any
	// other failed build instead of reporting a fresh interruption.
	s3, rep3 := openDurable(t, dir)
	defer s3.Close()
	if rep3.Interrupted != 0 || rep3.Archived != 1 {
		t.Fatalf("third open report = %+v, want 1 archived, 0 interrupted", rep3)
	}
}

// TestDurableResumeInterrupted is the opt-in alternative: with
// ResumeInterrupted the crashed build restarts from its recorded request
// and runs to ready.
func TestDurableResumeInterrupted(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	s1, _ := openDurable(t, dir, func(c *Config) {
		c.DeployOptions = []xcbc.Option{xcbc.WithInstallHook(func(node string, attempt int) error {
			<-gate
			return nil
		})}
	})
	do(t, s1, "POST", "/api/v1/deployments", `{"cluster":"littlefe","parallelism":2}`, nil)
	s1.Close()
	release()

	s2, rep := openDurable(t, dir, func(c *Config) { c.ResumeInterrupted = true })
	if rep.Resumed != 1 || rep.Interrupted != 0 {
		t.Fatalf("recovery report = %+v, want 1 resumed", rep)
	}
	final, _ := pollDeployment(t, s2, "d1")
	if final.State != "ready" {
		t.Fatalf("resumed build settled %q: %s", final.State, final.Error)
	}
	if rec := do(t, s2, "POST", "/api/v1/clusters/d1/jobs",
		`{"name":"post-resume","cores":1,"walltime":"10m"}`, nil); rec.Code >= 300 {
		t.Errorf("job on resumed cluster: %d", rec.Code)
	}
	s2.Close()

	// The resumed build settled ready and journaled it: the next open
	// rebuilds it like any ready deployment and replays the job.
	s3, rep3 := openDurable(t, dir)
	defer s3.Close()
	if rep3.Rebuilt != 1 || rep3.OpsReplayed != 1 {
		t.Fatalf("post-resume report = %+v, want 1 rebuilt with 1 op", rep3)
	}
}

// smallScenario is a cheap two-member script for restart tests.
const smallScenario = `{
	"name": "tiny",
	"seed": 7,
	"fleet": {"members": 2, "nodes": 2, "workers": 2},
	"phases": [
		{"kind": "provision"},
		{"kind": "jobs", "count": 3, "cores": 1, "runtime": "5m", "walltime": "30m"},
		{"kind": "advance", "duration": "1h"},
		{"kind": "assert", "invariants": [{"name": "all-ready"}, {"name": "jobs-conserved"}]}
	]
}`

// waitRunSettled polls one scenario run until it leaves "running".
func waitRunSettled(t *testing.T, s *Server, fleetID, runID string) scenarioRunInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info scenarioRunInfo
		rec := do(t, s, "GET", fmt.Sprintf("/api/v1/fleets/%s/scenarios/%s", fleetID, runID), "", &info)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET run: %d %s", rec.Code, rec.Body.String())
		}
		if info.State != "running" {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("scenario run never settled")
	return scenarioRunInfo{}
}

// TestDurableFleetScenarioRestart round-trips a fleet with a settled
// scenario run: the restarted server re-provisions the fleet, restores the
// run's recorded result (state, stats, full trace) without re-running it,
// and keeps serving new runs with continuing IDs.
func TestDurableFleetScenarioRestart(t *testing.T) {
	dir := t.TempDir()
	s1, _ := openDurable(t, dir)
	var fl fleetInfo
	rec := do(t, s1, "POST", "/api/v1/fleets", `{"name":"tiny","members":2,"nodes":2,"workers":2}`, &fl)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create fleet: %d %s", rec.Code, rec.Body.String())
	}
	waitFleetSettled(t, s1.Handler(), fl.ID)
	rec = do(t, s1, "POST", "/api/v1/fleets/"+fl.ID+"/scenarios",
		`{"scenario": `+smallScenario+`}`, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("run scenario: %d %s", rec.Code, rec.Body.String())
	}
	before := waitRunSettled(t, s1, fl.ID, "s1")
	if before.State != "passed" {
		t.Fatalf("run settled %q: %s %v", before.State, before.Error, before.Violations)
	}
	traceBefore := do(t, s1, "GET", "/api/v1/fleets/"+fl.ID+"/scenarios/s1?cursor=0", "", nil).Body.String()
	s1.Close()

	s2, rep := openDurable(t, dir)
	if rep.Fleets != 1 || rep.Runs != 1 || rep.Replayed != 0 || rep.ReplayMismatches != 0 {
		t.Fatalf("recovery report = %+v, want 1 fleet with 1 restored run", rep)
	}
	var flAfter fleetInfo
	do(t, s2, "GET", "/api/v1/fleets/"+fl.ID, "", &flAfter)
	if flAfter.Status.Ready != 2 || flAfter.Scenarios != 1 {
		t.Fatalf("recovered fleet = %+v", flAfter)
	}
	traceAfter := do(t, s2, "GET", "/api/v1/fleets/"+fl.ID+"/scenarios/s1?cursor=0", "", nil).Body.String()
	if traceAfter != traceBefore {
		t.Errorf("restored run diverged:\nbefore: %s\nafter:  %s", traceBefore, traceAfter)
	}

	// A new run on the recovered fleet continues the ID sequence.
	rec = do(t, s2, "POST", "/api/v1/fleets/"+fl.ID+"/scenarios", `{"scenario": `+smallScenario+`}`, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("second run: %d %s", rec.Code, rec.Body.String())
	}
	var run2 scenarioRunInfo
	if err := json.Unmarshal([]byte(rec.Body.String()), &run2); err != nil || run2.ID != "s2" {
		t.Fatalf("second run ID = %q (%v), want s2", run2.ID, err)
	}
	waitRunSettled(t, s2, fl.ID, "s2")
	s2.Close()

	// Fleet deletion persists too.
	s3, _ := openDurable(t, dir)
	if rec := do(t, s3, "DELETE", "/api/v1/fleets/"+fl.ID, "", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete fleet: %d", rec.Code)
	}
	s3.Close()
	s4, rep4 := openDurable(t, dir)
	defer s4.Close()
	if rep4.Fleets != 0 {
		t.Fatalf("deleted fleet came back: %+v", rep4)
	}
}

// TestScenarioTraceCursorPastEnd pins the trace paging boundary: a cursor
// beyond the end of a settled run's trace is not an error but a clean
// empty page, with next_cursor still reporting the trace length.
func TestScenarioTraceCursorPastEnd(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := do(t, s, "POST", "/api/v1/fleets", `{"name":"tiny","members":2,"nodes":2,"workers":2,"provision":false}`, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create fleet: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "POST", "/api/v1/fleets/f1/scenarios", `{"scenario": `+smallScenario+`}`, nil); rec.Code != http.StatusAccepted {
		t.Fatalf("run: %d %s", rec.Code, rec.Body.String())
	}
	settled := waitRunSettled(t, s, "f1", "s1")
	if settled.NextCursor == 0 {
		t.Fatalf("settled run has no trace: %+v", settled)
	}
	var page scenarioRunInfo
	rc := do(t, s, "GET", fmt.Sprintf("/api/v1/fleets/f1/scenarios/s1?cursor=%d", settled.NextCursor+1000), "", &page)
	if rc.Code != http.StatusOK {
		t.Fatalf("cursor past end: %d %s", rc.Code, rc.Body.String())
	}
	if len(page.Events) != 0 {
		t.Errorf("cursor past end returned %d events, want empty page", len(page.Events))
	}
	if page.NextCursor != settled.NextCursor {
		t.Errorf("next_cursor = %d, want %d", page.NextCursor, settled.NextCursor)
	}
}
