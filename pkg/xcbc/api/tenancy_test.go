package api

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xcbc/internal/repo"
	"xcbc/pkg/xcbc"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// newMTServer builds a multi-tenant in-memory server with a fixed clock
// (overridable via the returned pointer for rate-limit tests).
func newMTServer(t *testing.T, tenants ...TenantConfig) (*Server, *time.Time) {
	t.Helper()
	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 9, 8, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	s := New(Config{Repos: []*repo.Repository{xnit}, Clock: clock, Tenants: tenants})
	t.Cleanup(func() { s.Close() })
	return s, &now
}

// doKey is do with a bearer token attached.
func doKey(t *testing.T, s *Server, key, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func twoTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "alpha", Key: "alpha-key"},
		{Name: "beta", Key: "beta-key"},
	}
}

// TestAdmission4xx is the table-driven 4xx contract: 401 for missing and
// unknown keys on every route class, 403 with the typed quota body, 429
// with Retry-After, and 400 for malformed cursor/limit on every paginated
// route. Every error keeps the {"error": ...} envelope.
func TestAdmission4xx(t *testing.T) {
	t.Run("auth", func(t *testing.T) {
		s, _ := newMTServer(t, twoTenants()...)
		routes := []struct{ method, path, body string }{
			{"GET", "/api/v1/deployments", ""},
			{"POST", "/api/v1/deployments", `{"cluster":"littlefe"}`},
			{"GET", "/api/v1/fleets", ""},
			{"GET", "/api/v1/clusters", ""},
			{"GET", "/api/v1/campaigns", ""},
			{"GET", "/api/v1/scenarios", ""},
			{"GET", "/api/v1/store", ""},
			{"GET", "/api/v1/repos", ""},
			{"POST", "/api/v1/depsolve", `{"install":["gromacs"]}`},
		}
		for _, r := range routes {
			for _, key := range []string{"", "wrong-key"} {
				rec := doKey(t, s, key, r.method, r.path, r.body, nil)
				if rec.Code != http.StatusUnauthorized {
					t.Errorf("%s %s key=%q: %d, want 401", r.method, r.path, key, rec.Code)
					continue
				}
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(rec.Body.Bytes(), &e) != nil || e.Error == "" {
					t.Errorf("%s %s: 401 body lost the error envelope: %s", r.method, r.path, rec.Body.String())
				}
				wantFragment := "unknown API key"
				if key == "" {
					wantFragment = "missing API key"
				}
				if !strings.Contains(e.Error, wantFragment) {
					t.Errorf("%s %s key=%q: error %q, want %q", r.method, r.path, key, e.Error, wantFragment)
				}
			}
		}
		// Bootstrap exemptions: discovery and health answer without a key.
		for _, path := range []string{"/api/v1", "/api/v1/healthz"} {
			if rec := doKey(t, s, "", "GET", path, "", nil); rec.Code != http.StatusOK {
				t.Errorf("GET %s without key: %d, want 200 (admission-exempt)", path, rec.Code)
			}
		}
		// The legacy Yum surface predates keys and stays anonymous.
		if rec := doKey(t, s, "", "GET", "/", "", nil); rec.Code != http.StatusOK {
			t.Errorf("GET / without key: %d, want 200 (legacy surface)", rec.Code)
		}
	})

	t.Run("quota", func(t *testing.T) {
		s, _ := newMTServer(t,
			TenantConfig{Name: "small", Key: "small-key",
				Quotas: Quotas{MaxDeployments: 1, MaxFleets: 1, MaxCampaigns: 1}},
			TenantConfig{Name: "big", Key: "big-key"},
		)
		creates := []struct {
			resource, path, body string
		}{
			{"deployments", "/api/v1/deployments", `{"cluster":"littlefe"}`},
			{"fleets", "/api/v1/fleets", `{"name":"q","members":2,"cluster":"littlefe","provision":false}`},
			{"campaigns", "/api/v1/campaigns", `{"seeds":1,"workers":1}`},
		}
		for _, c := range creates {
			if rec := doKey(t, s, "small-key", "POST", c.path, c.body, nil); rec.Code/100 != 2 {
				t.Fatalf("first %s create: %d %s", c.resource, rec.Code, rec.Body.String())
			}
			var qe quotaError
			rec := doKey(t, s, "small-key", "POST", c.path, c.body, &qe)
			if rec.Code != http.StatusForbidden {
				t.Fatalf("second %s create: %d, want 403", c.resource, rec.Code)
			}
			if qe.Code != "quota_exceeded" || qe.Resource != c.resource || qe.Limit != 1 || qe.InUse != 1 || qe.Err == "" {
				t.Errorf("%s quota body: %+v", c.resource, qe)
			}
			// The sibling tenant is not constrained by small's quota.
			if rec := doKey(t, s, "big-key", "POST", c.path, c.body, nil); rec.Code/100 != 2 {
				t.Errorf("big tenant %s create hit small's quota: %d", c.resource, rec.Code)
			}
		}
	})

	t.Run("rate-limit", func(t *testing.T) {
		s, now := newMTServer(t,
			TenantConfig{Name: "slow", Key: "slow-key", RateLimit: 1, Burst: 2},
			TenantConfig{Name: "free", Key: "free-key"},
		)
		for i := 0; i < 2; i++ {
			if rec := doKey(t, s, "slow-key", "GET", "/api/v1/fleets", "", nil); rec.Code != http.StatusOK {
				t.Fatalf("burst request %d: %d", i, rec.Code)
			}
		}
		var rle rateLimitError
		rec := doKey(t, s, "slow-key", "GET", "/api/v1/fleets", "", &rle)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("over-budget request: %d, want 429", rec.Code)
		}
		if ra := rec.Header().Get("Retry-After"); ra != "1" {
			t.Errorf("Retry-After = %q, want \"1\" (1 token at 1 req/s)", ra)
		}
		if rle.Code != "rate_limited" || rle.Err == "" || rle.RetryAfter == "" {
			t.Errorf("429 body: %+v", rle)
		}
		// An unlimited sibling is unaffected; time refills the bucket.
		if rec := doKey(t, s, "free-key", "GET", "/api/v1/fleets", "", nil); rec.Code != http.StatusOK {
			t.Errorf("free tenant rate-limited: %d", rec.Code)
		}
		*now = now.Add(2 * time.Second)
		if rec := doKey(t, s, "slow-key", "GET", "/api/v1/fleets", "", nil); rec.Code != http.StatusOK {
			t.Errorf("after refill: %d, want 200", rec.Code)
		}
	})

	t.Run("pagination-400", func(t *testing.T) {
		s, _ := newMTServer(t, twoTenants()...)
		doKey(t, s, "alpha-key", "POST", "/api/v1/fleets",
			`{"name":"p","members":2,"cluster":"littlefe","provision":false}`, nil)
		paths := []string{
			"/api/v1/deployments",
			"/api/v1/fleets",
			"/api/v1/clusters",
			"/api/v1/campaigns",
			"/api/v1/scenarios",
			"/api/v1/fleets/f1/scenarios",
		}
		bad := []string{"cursor=-1", "cursor=x", "limit=0", "limit=1001", "limit=x"}
		for _, path := range paths {
			for _, q := range bad {
				rec := doKey(t, s, "alpha-key", "GET", path+"?"+q, "", nil)
				if rec.Code != http.StatusBadRequest {
					t.Errorf("GET %s?%s: %d, want 400", path, q, rec.Code)
					continue
				}
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(rec.Body.Bytes(), &e) != nil || e.Error == "" {
					t.Errorf("GET %s?%s: 400 body lost the error envelope: %s", path, q, rec.Body.String())
				}
			}
			// The happy path still answers with the pagination fields.
			var env map[string]any
			if rec := doKey(t, s, "alpha-key", "GET", path+"?limit=1", "", &env); rec.Code != http.StatusOK {
				t.Errorf("GET %s?limit=1: %d", path, rec.Code)
			} else if _, ok := env["next_cursor"]; !ok {
				t.Errorf("GET %s: envelope missing next_cursor: %v", path, env)
			}
		}
	})
}

// TestCrossTenantIsolation hammers two tenants concurrently (create,
// list, get, delete) and asserts the shards never bleed: a tenant's
// listings only ever show its own resources, and another tenant's IDs
// answer 404 on GET and DELETE. Run under -race this also proves the
// shard locking.
func TestCrossTenantIsolation(t *testing.T) {
	s, _ := newMTServer(t, twoTenants()...)
	tenants := []struct{ key, name string }{
		{"alpha-key", "alpha"},
		{"beta-key", "beta"},
	}
	const rounds = 20
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(key, name string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				body := fmt.Sprintf(`{"name":"%s-%d","members":2,"cluster":"littlefe","provision":false}`, name, i)
				var created struct {
					ID string `json:"id"`
				}
				if rec := doKey(t, s, key, "POST", "/api/v1/fleets", body, &created); rec.Code != http.StatusAccepted {
					t.Errorf("%s create %d: %d", name, i, rec.Code)
					return
				}
				var list struct {
					Fleets []struct {
						Name string `json:"name"`
					} `json:"fleets"`
				}
				doKey(t, s, key, "GET", "/api/v1/fleets?limit=1000", "", &list)
				for _, f := range list.Fleets {
					if !strings.HasPrefix(f.Name, name+"-") {
						t.Errorf("%s listing leaked foreign fleet %q", name, f.Name)
						return
					}
				}
				if i%3 == 0 {
					doKey(t, s, key, "DELETE", "/api/v1/fleets/"+created.ID, "", nil)
				}
			}
		}(tn.key, tn.name)
	}
	wg.Wait()

	// Alpha creates a fleet beta has never created (IDs are per-tenant
	// sequences, so pick one beyond beta's range).
	var probe struct {
		ID string `json:"id"`
	}
	doKey(t, s, "alpha-key", "POST", "/api/v1/fleets",
		`{"name":"alpha-probe","members":2,"cluster":"littlefe","provision":false}`, &probe)
	var got struct {
		Name string `json:"name"`
	}
	if rec := doKey(t, s, "alpha-key", "GET", "/api/v1/fleets/"+probe.ID, "", &got); rec.Code != http.StatusOK || got.Name != "alpha-probe" {
		t.Fatalf("owner GET %s: %d %q", probe.ID, rec.Code, got.Name)
	}
	// Beta sees alpha's ID as its own shard's namespace: either 404, or a
	// beta-owned fleet — never alpha's.
	var foreign struct {
		Name string `json:"name"`
	}
	rec := doKey(t, s, "beta-key", "GET", "/api/v1/fleets/"+probe.ID, "", nil)
	if rec.Code == http.StatusOK {
		_ = json.Unmarshal(rec.Body.Bytes(), &foreign)
		if foreign.Name == "alpha-probe" {
			t.Fatalf("beta read alpha's fleet %s", probe.ID)
		}
	}
	// A DELETE through the wrong tenant must not remove alpha's fleet.
	doKey(t, s, "beta-key", "DELETE", "/api/v1/fleets/"+probe.ID, "", nil)
	if rec := doKey(t, s, "alpha-key", "GET", "/api/v1/fleets/"+probe.ID, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("alpha's fleet gone after beta's DELETE: %d", rec.Code)
	}
}

// TestTenantDurability proves the per-tenant store seam: each named
// tenant journals under DataDir/tenants/<name>, and a restart recovers
// every shard with tenancy intact.
func TestTenantDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := func(c *Config) { c.Tenants = twoTenants() }

	s1, _ := openDurable(t, dir, cfg)
	if rec := doKey(t, s1, "alpha-key", "POST", "/api/v1/fleets",
		`{"name":"alpha-f","members":2,"cluster":"littlefe","provision":false}`, nil); rec.Code != http.StatusAccepted {
		t.Fatalf("alpha create: %d", rec.Code)
	}
	if rec := doKey(t, s1, "beta-key", "POST", "/api/v1/deployments",
		`{"cluster":"littlefe"}`, nil); rec.Code != http.StatusAccepted {
		t.Fatalf("beta create: %d", rec.Code)
	}
	waitState(t, s1, "beta-key", "/api/v1/deployments/d1")
	s1.Close()

	for _, name := range []string{"alpha", "beta"} {
		if _, err := os.Stat(filepath.Join(dir, "tenants", name)); err != nil {
			t.Errorf("tenant %s has no journal directory: %v", name, err)
		}
	}

	s2, rep := openDurable(t, dir, cfg)
	defer s2.Close()
	if rep.Fleets != 1 || rep.Deployments != 1 {
		t.Fatalf("merged recovery report: %+v, want 1 fleet + 1 deployment", rep)
	}
	var fl struct {
		Fleets []struct {
			Name string `json:"name"`
		} `json:"fleets"`
	}
	doKey(t, s2, "alpha-key", "GET", "/api/v1/fleets", "", &fl)
	if len(fl.Fleets) != 1 || fl.Fleets[0].Name != "alpha-f" {
		t.Fatalf("alpha recovered fleets: %+v", fl)
	}
	var dl struct {
		Deployments []json.RawMessage `json:"deployments"`
	}
	doKey(t, s2, "beta-key", "GET", "/api/v1/deployments", "", &dl)
	if len(dl.Deployments) != 1 {
		t.Fatalf("beta recovered %d deployments, want 1", len(dl.Deployments))
	}
	// The shards did not bleed across the restart.
	doKey(t, s2, "beta-key", "GET", "/api/v1/fleets", "", &fl)
	if len(fl.Fleets) != 0 {
		t.Fatalf("beta recovered alpha's fleets: %+v", fl)
	}
	doKey(t, s2, "alpha-key", "GET", "/api/v1/deployments", "", &dl)
	if len(dl.Deployments) != 0 {
		t.Fatalf("alpha recovered beta's deployments: %+v", dl)
	}
}

// waitState polls a deployment until it leaves the building states, so
// Close never races a build mid-journal in this test.
func waitState(t *testing.T, s *Server, key, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var info struct {
			State string `json:"state"`
		}
		doKey(t, s, key, "GET", path, "", &info)
		switch info.State {
		case "ready", "failed", "cancelled":
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("deployment never settled")
}

// TestCrashRestartSeedsTenants is the tenancy extension of
// TestCrashRestartSeeds: seeded create/crash/recover cycles where every
// cycle runs two tenants, and recovery must restore each shard's
// resources to its own tenant.
func TestCrashRestartSeedsTenants(t *testing.T) {
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	keys := []string{"alpha-key", "beta-key"}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			cfg := func(c *Config) {
				c.Tenants = twoTenants()
				c.SnapshotEvery = 2 + seed
			}
			perTenant := 1 + seed%2
			s1, _ := openDurable(t, dir, cfg)
			for i := 0; i < perTenant; i++ {
				for _, key := range keys {
					body := fmt.Sprintf(`{"cluster":"littlefe","parallelism":%d}`, 1+seed%4)
					if rec := doKey(t, s1, key, "POST", "/api/v1/deployments", body, nil); rec.Code != 202 {
						t.Fatalf("create: %d", rec.Code)
					}
				}
			}
			time.Sleep(time.Duration(seed) * 2 * time.Millisecond)
			s1.Close()

			s2, rep := openDurable(t, dir, cfg)
			if rep.Deployments != perTenant*2 {
				t.Fatalf("recovered %d deployments, want %d (report %+v)", rep.Deployments, perTenant*2, rep)
			}
			for _, key := range keys {
				var list struct {
					Deployments []json.RawMessage `json:"deployments"`
					Count       int               `json:"count"`
				}
				if rec := doKey(t, s2, key, "GET", "/api/v1/deployments", "", &list); rec.Code != 200 {
					t.Fatalf("list after recovery: %d", rec.Code)
				}
				if list.Count != perTenant {
					t.Fatalf("tenant %s recovered %d deployments, want %d", key, list.Count, perTenant)
				}
			}
			s2.Close()
		})
	}
}

// TestDiscoveryGolden pins the discovery document byte for byte, so any
// drift in the route table or the advertised auth/pagination contract
// shows up as a reviewed diff (regenerate with go test -run
// TestDiscoveryGolden -update ./pkg/xcbc/api/).
func TestDiscoveryGolden(t *testing.T) {
	golden := filepath.Join("testdata", "discovery.golden")
	check := func(t *testing.T, name string, s *Server) {
		rec := do(t, s, "GET", "/api/v1", "", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /api/v1: %d", rec.Code)
		}
		var pretty json.RawMessage = rec.Body.Bytes()
		out, err := json.MarshalIndent(pretty, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, '\n')
		path := golden
		if name != "" {
			path = strings.TrimSuffix(golden, ".golden") + "-" + name + ".golden"
		}
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create it)", err)
		}
		if string(want) != string(out) {
			t.Errorf("discovery document drifted from %s:\n got: %s\nwant: %s\n(run with -update if the change is intended)", path, out, want)
		}
	}
	t.Run("open", func(t *testing.T) { check(t, "", newTestServer(t)) })
	t.Run("multi-tenant", func(t *testing.T) {
		s, _ := newMTServer(t, twoTenants()...)
		check(t, "mt", s)
	})
}

// TestDiscoveryAdvertisesContracts spot-checks the semantic content the
// golden file pins syntactically.
func TestDiscoveryAdvertisesContracts(t *testing.T) {
	s, _ := newMTServer(t, twoTenants()...)
	var doc struct {
		Auth struct {
			Mode   string   `json:"mode"`
			Header string   `json:"header"`
			Exempt []string `json:"exempt"`
		} `json:"auth"`
		Pagination struct {
			Params       string `json:"params"`
			DefaultLimit int    `json:"default_limit"`
			MaxLimit     int    `json:"max_limit"`
		} `json:"pagination"`
	}
	doKey(t, s, "", "GET", "/api/v1", "", &doc)
	if doc.Auth.Mode != "api-key" || !strings.Contains(doc.Auth.Header, "Bearer") || len(doc.Auth.Exempt) != 2 {
		t.Errorf("auth contract: %+v", doc.Auth)
	}
	if doc.Pagination.DefaultLimit != defaultPageLimit || doc.Pagination.MaxLimit != maxPageLimit || doc.Pagination.Params == "" {
		t.Errorf("pagination contract: %+v", doc.Pagination)
	}
	open := newTestServer(t)
	doKey(t, open, "", "GET", "/api/v1", "", &doc)
	if doc.Auth.Mode != "open" {
		t.Errorf("open-mode auth mode = %q", doc.Auth.Mode)
	}
}
