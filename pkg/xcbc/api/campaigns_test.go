package api

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
	"time"

	"xcbc/internal/wal"
	"xcbc/pkg/xcbc"
)

// waitCampaign blocks until the campaign settles and returns its info.
func waitCampaign(t *testing.T, s *Server, id string) campaignInfo {
	t.Helper()
	cr, ok := lookupCampaign(s.openTenant, id)
	if !ok {
		t.Fatalf("campaign %s not found", id)
	}
	select {
	case <-cr.done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("campaign %s did not settle", id)
	}
	var info campaignInfo
	if rec := do(t, s, "GET", "/api/v1/campaigns/"+id, "", &info); rec.Code != http.StatusOK {
		t.Fatalf("GET campaign: %d %s", rec.Code, rec.Body.String())
	}
	return info
}

// TestCampaignLifecycle drives a small clean sweep through the REST
// surface: 202 on create, progress visible by id and in the list, and a
// terminal "passed" state with every seed accounted for.
func TestCampaignLifecycle(t *testing.T) {
	s := newTestServer(t)
	var created campaignInfo
	rec := do(t, s, "POST", "/api/v1/campaigns", `{"seeds":3,"workers":4}`, &created)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("create campaign: %d %s", rec.Code, rec.Body.String())
	}
	if created.ID == "" || created.State != "running" || created.Seeds != 3 {
		t.Fatalf("created campaign = %+v", created)
	}

	info := waitCampaign(t, s, created.ID)
	if info.State != "passed" || info.Completed != 3 || info.Passed != 3 || info.Failed != 0 {
		t.Fatalf("settled campaign = %+v, want 3/3 passed", info)
	}

	var list struct {
		Campaigns []campaignInfo `json:"campaigns"`
	}
	if rec := do(t, s, "GET", "/api/v1/campaigns", "", &list); rec.Code != http.StatusOK {
		t.Fatalf("list campaigns: %d", rec.Code)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != created.ID {
		t.Fatalf("campaign list = %+v", list.Campaigns)
	}
}

func TestCampaignRequestErrors(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"seeds":0}`, http.StatusBadRequest},
		{`{"seeds":-3}`, http.StatusBadRequest},
		{fmt.Sprintf(`{"seeds":%d}`, maxCampaignSeeds+1), http.StatusBadRequest},
		{fmt.Sprintf(`{"seeds":1,"workers":%d}`, maxCampaignWorkers+1), http.StatusBadRequest},
		{`{"seeds":1,"shrink_budget":-1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := do(t, s, "POST", "/api/v1/campaigns", c.body, nil); rec.Code != c.want {
			t.Errorf("POST %s = %d, want %d", c.body, rec.Code, c.want)
		}
	}
	if rec := do(t, s, "GET", "/api/v1/campaigns/c99", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("GET unknown campaign = %d, want 404", rec.Code)
	}
}

// floodHook is the planted invariant bug for API-level campaign tests:
// any generated scenario that contains a job-flood phase "fails". Purely
// a function of the scenario, so shrunk repros re-fail deterministically.
func floodHook(sc *xcbc.Scenario, res *xcbc.ScenarioResult) []string {
	doc, err := sc.JSON()
	if err == nil && bytes.Contains(doc, []byte("job-flood")) {
		return []string{"planted: job-flood ran"}
	}
	return nil
}

// floodSeedWindow finds a seed window whose generated scenarios include at
// least one with a job-flood phase.
func floodSeedWindow(t *testing.T) (int64, int) {
	t.Helper()
	for seed := int64(0); seed < 200; seed++ {
		if floodHook(xcbc.GenerateScenario(seed), nil) != nil {
			return seed, 2
		}
	}
	t.Fatal("no generated scenario with a job-flood phase in 200 seeds")
	return 0, 0
}

// TestCampaignFailureCarriesShrunkRepro plants a bug through the config
// seam and requires the REST surface to deliver what the ISSUE promises:
// a failed campaign whose failure entry carries a minimized, loadable
// repro script for the failing seed.
func TestCampaignFailureCarriesShrunkRepro(t *testing.T) {
	start, n := floodSeedWindow(t)
	s := New(Config{CampaignHook: floodHook})
	body := fmt.Sprintf(`{"seeds":%d,"start_seed":%d,"workers":2,"shrink_budget":80}`, n, start)
	var created campaignInfo
	if rec := do(t, s, "POST", "/api/v1/campaigns", body, &created); rec.Code != http.StatusAccepted {
		t.Fatalf("create campaign: %d %s", rec.Code, rec.Body.String())
	}

	info := waitCampaign(t, s, created.ID)
	if info.State != "failed" || info.Failed == 0 || len(info.Failures) == 0 {
		t.Fatalf("campaign missed the planted bug: %+v", info)
	}
	f := info.Failures[0]
	repro, err := xcbc.LoadScenario(f.Repro)
	if err != nil {
		t.Fatalf("failure repro does not load: %v\n%s", err, f.Repro)
	}
	if f.ReproPhases != repro.Phases() {
		t.Errorf("repro_phases = %d, script has %d", f.ReproPhases, repro.Phases())
	}
	if orig := xcbc.GenerateScenario(f.Seed); repro.Phases() >= orig.Phases() {
		t.Errorf("repro has %d phases, original %d — nothing shrunk", repro.Phases(), orig.Phases())
	}
	if floodHook(repro, nil) == nil {
		t.Error("shrunk repro no longer contains the planted trigger")
	}
}

// TestCampaignDurableSettled journals a clean campaign, restarts the
// server, and requires the campaign to reload with its full recorded
// result — without re-sweeping any seed.
func TestCampaignDurableSettled(t *testing.T) {
	dir := t.TempDir()
	s1, _ := openDurable(t, dir)
	var created campaignInfo
	if rec := do(t, s1, "POST", "/api/v1/campaigns", `{"seeds":2,"workers":2}`, &created); rec.Code != http.StatusAccepted {
		t.Fatalf("create campaign: %d %s", rec.Code, rec.Body.String())
	}
	before := waitCampaign(t, s1, created.ID)
	s1.Close()

	s2, rep := openDurable(t, dir)
	defer s2.Close()
	if rep.Campaigns != 1 || rep.CampaignsInterrupted != 0 {
		t.Fatalf("recovery report = %+v, want 1 settled campaign", rep)
	}
	var after campaignInfo
	if rec := do(t, s2, "GET", "/api/v1/campaigns/"+created.ID, "", &after); rec.Code != http.StatusOK {
		t.Fatalf("GET recovered campaign: %d", rec.Code)
	}
	if after.State != before.State || after.Completed != before.Completed || after.Passed != before.Passed {
		t.Fatalf("recovered campaign = %+v, want %+v", after, before)
	}

	// New campaigns after recovery must not collide with recovered IDs.
	var next campaignInfo
	if rec := do(t, s2, "POST", "/api/v1/campaigns", `{"seeds":1,"workers":2}`, &next); rec.Code != http.StatusAccepted {
		t.Fatalf("create after recovery: %d", rec.Code)
	}
	if next.ID == created.ID {
		t.Fatalf("recovered server reused campaign ID %s", next.ID)
	}
	waitCampaign(t, s2, next.ID)
}

// TestCampaignInterruptedRecovery synthesizes the WAL of a server that
// died mid-campaign — started, two of four seeds journaled, no settled
// record — and requires recovery to surface the partial results as an
// "interrupted" campaign rather than dropping or silently re-running it.
func TestCampaignInterruptedRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	created := time.Date(2015, 9, 8, 12, 0, 0, 0, time.UTC)
	repro, err := xcbc.GenerateScenario(8).JSON()
	if err != nil {
		t.Fatal(err)
	}
	records := []struct {
		typ string
		v   any
	}{
		{recCampaignStarted, campaignStartedRec{
			ID: "c1", Spec: xcbc.CampaignSpec{Seeds: 4, StartSeed: 7}, Created: created,
		}},
		{recCampaignSeed, campaignSeedRec{ID: "c1", Outcome: xcbc.CampaignSeedOutcome{
			Seed: 7, State: xcbc.CampaignSeedPassed,
		}}},
		{recCampaignSeed, campaignSeedRec{ID: "c1", Outcome: xcbc.CampaignSeedOutcome{
			Seed: 8, State: xcbc.CampaignSeedFailed,
			Violations: []string{"planted: synthetic"},
			Failure: &xcbc.CampaignFailure{
				Seed: 8, Violations: []string{"planted: synthetic"},
				Repro: repro, ReproPhases: 3, ShrinkEvals: 12,
			},
		}}},
	}
	for _, r := range records {
		if _, err := l.AppendJSON(r.typ, r.v); err != nil {
			t.Fatalf("append %s: %v", r.typ, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s, rep := openDurable(t, dir)
	if rep.Campaigns != 1 || rep.CampaignsInterrupted != 1 {
		t.Fatalf("recovery report = %+v, want 1 interrupted campaign", rep)
	}
	var info campaignInfo
	if rec := do(t, s, "GET", "/api/v1/campaigns/c1", "", &info); rec.Code != http.StatusOK {
		t.Fatalf("GET interrupted campaign: %d", rec.Code)
	}
	if info.State != "interrupted" || info.Error == "" {
		t.Fatalf("interrupted campaign = %+v", info)
	}
	if info.Completed != 2 || info.Passed != 1 || info.Failed != 1 || info.Seeds != 4 {
		t.Fatalf("partial results = %+v, want 2 of 4 seeds (1 passed, 1 failed)", info)
	}
	if len(info.Failures) != 1 || info.Failures[0].Seed != 8 {
		t.Fatalf("journaled failure lost: %+v", info.Failures)
	}
	if _, err := xcbc.LoadScenario(info.Failures[0].Repro); err != nil {
		t.Fatalf("recovered repro does not load: %v", err)
	}
	s.Close()

	// The interruption was itself journaled: a second recovery restores the
	// campaign as settled, not interrupted again.
	s2, rep2 := openDurable(t, dir)
	defer s2.Close()
	if rep2.Campaigns != 1 || rep2.CampaignsInterrupted != 0 {
		t.Fatalf("second recovery = %+v, want settled campaign", rep2)
	}
	var again campaignInfo
	if rec := do(t, s2, "GET", "/api/v1/campaigns/c1", "", &again); rec.Code != http.StatusOK {
		t.Fatalf("GET after second recovery: %d", rec.Code)
	}
	if again.State != "interrupted" || again.Completed != 2 {
		t.Fatalf("second recovery lost state: %+v", again)
	}
}
