package xcbc

import (
	"context"
	"fmt"

	"xcbc/internal/core"
	"xcbc/internal/provision"
	"xcbc/internal/rpm"
)

// Builder deploys a cluster. Deploy may take a long (simulated) time; it
// reports progress through WithProgress and honors cancellation between
// node installs.
type Builder interface {
	Deploy(ctx context.Context) (*Deployment, error)
}

// NewXCBC returns a builder for the bare-metal path: assemble the Rocks
// distribution with the XSEDE roll, install the frontend, kickstart every
// compute node, and start the subsystems — "all at once, from scratch".
func NewXCBC(opts ...Option) Builder {
	return &xcbcBuilder{cfg: newConfig(opts)}
}

type xcbcBuilder struct{ cfg *config }

func (b *xcbcBuilder) Deploy(ctx context.Context) (*Deployment, error) {
	cfg := b.cfg
	if cfg.err != nil {
		return nil, cfg.err
	}
	scheduler := cfg.scheduler
	if scheduler == "" {
		scheduler = "torque"
	}
	if err := checkScheduler(scheduler); err != nil {
		return nil, err
	}
	rolls := cfg.rolls
	if !cfg.rollsSet {
		rolls = []string{"ganglia", "hpc"}
	}
	if err := checkRolls(rolls); err != nil {
		return nil, err
	}
	policy, err := cfg.powerPolicy.internal()
	if err != nil {
		return nil, err
	}
	hw, err := cfg.resolveHardware()
	if err != nil {
		return nil, err
	}
	// Always pass a non-nil slice: core treats nil OptionalRolls as "use
	// defaults", but WithRolls() with no names means "no optional rolls".
	d, err := core.BuildXCBCContext(ctx, cfg.resolveEngine(), hw, core.Options{
		Scheduler:       scheduler,
		OptionalRolls:   append(make([]string, 0, len(rolls)), rolls...),
		PowerPolicy:     policy,
		MonitorInterval: cfg.monitorInterval,
		Progress: func(ev core.BuildEvent) {
			cfg.emit(Event{Stage: ev.Stage, Node: ev.Node, Message: ev.Message,
				Packages: ev.Packages, Elapsed: ev.Elapsed})
		},
	})
	if err != nil {
		return nil, translate(err)
	}
	return &Deployment{core: d}, nil
}

// NewVendor returns a builder for a vendor-managed machine: the OS and a
// minimal package set installed by vendor tooling (which, unlike Rocks,
// handles diskless nodes), no XSEDE stack. Its Deployment is what NewXNIT
// adopts.
func NewVendor(opts ...Option) Builder {
	return &vendorBuilder{cfg: newConfig(opts)}
}

type vendorBuilder struct{ cfg *config }

// defaultBasePackages is the EL6-era ship state the paper's Limulus
// arrives with.
func defaultBasePackages() []*rpm.Package {
	return []*rpm.Package{
		rpm.NewPackage("kernel", "2.6.32-431.el6.sl", rpm.ArchX86_64).Build(),
		rpm.NewPackage("openssh-server", "5.3p1-94.el6", rpm.ArchX86_64).Build(),
		rpm.NewPackage("environment-modules", "3.2.10-2.el6", rpm.ArchX86_64).Build(),
	}
}

func (b *vendorBuilder) Deploy(ctx context.Context) (*Deployment, error) {
	cfg := b.cfg
	if cfg.err != nil {
		return nil, cfg.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.schedulerSet && cfg.scheduler != "" {
		if err := checkScheduler(cfg.scheduler); err != nil {
			return nil, err
		}
	}
	policy, err := cfg.powerPolicy.internal()
	if err != nil {
		return nil, err
	}
	hw, err := cfg.resolveHardware()
	if err != nil {
		return nil, err
	}
	eng := cfg.resolveEngine()
	osName := cfg.vendorOS
	if osName == "" {
		osName = "Scientific Linux 6.5"
	}
	if !cfg.preProvisioned {
		base := cfg.basePackages
		if base == nil {
			base = defaultBasePackages()
		}
		if err := provision.VendorProvision(eng, hw, osName, base); err != nil {
			return nil, translate(err)
		}
		cfg.emit(Event{Stage: "vendor", Packages: len(base) * hw.NodeCount(),
			Message: fmt.Sprintf("vendor tooling installed %s on %d nodes", osName, hw.NodeCount())})
	}
	d, err := core.NewVendorDeployment(eng, hw, cfg.scheduler, core.Options{
		PowerPolicy:     policy,
		MonitorInterval: cfg.monitorInterval,
	})
	if err != nil {
		return nil, translate(err)
	}
	return &Deployment{core: d}, nil
}

// NewXNIT returns a builder that converts an existing deployment in place:
// configure the XSEDE Yum repository with the recommended priority, install
// the requested profiles and packages, and optionally change the scheduler
// — all without touching the pre-existing cluster setup. Deploy returns
// the same Deployment, converted.
func NewXNIT(existing *Deployment, opts ...Option) Builder {
	return &xnitBuilder{existing: existing, cfg: newConfig(opts)}
}

type xnitBuilder struct {
	existing *Deployment
	cfg      *config
}

func (b *xnitBuilder) Deploy(ctx context.Context) (*Deployment, error) {
	cfg := b.cfg
	d := b.existing
	if cfg.err != nil {
		return nil, cfg.err
	}
	if d == nil || d.core == nil {
		return nil, fmt.Errorf("%w: NewXNIT needs the deployment to convert", ErrNilDeployment)
	}
	if cfg.schedulerSet && cfg.scheduler != "" {
		if err := checkScheduler(cfg.scheduler); err != nil {
			return nil, err
		}
	}
	if err := checkProfiles(cfg.profiles); err != nil {
		return nil, err
	}
	// Idempotent repo configuration: a retry after a failed or cancelled
	// adoption must not duplicate the xsede entry.
	xnit := d.core.Repos.Lookup(XNITRepoID)
	if xnit == nil {
		var err error
		xnit, err = core.NewXNITRepository()
		if err != nil {
			return nil, translate(err)
		}
		core.ConfigureXNIT(d.core, xnit)
	}
	cfg.emit(Event{Stage: "repo", Packages: xnit.Len(),
		Message: fmt.Sprintf("configured %s repository at priority %d", XNITRepoID, XNITPriority)})
	for _, profile := range cfg.profiles {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xcbc: XNIT adoption cancelled before profile %s: %w", profile, err)
		}
		n, err := d.core.InstallProfile(profile)
		if err != nil {
			return nil, translate(err)
		}
		cfg.emit(Event{Stage: "profile", Packages: n,
			Message: fmt.Sprintf("installed profile %s cluster-wide", profile)})
	}
	if cfg.schedulerSet && cfg.scheduler != "" && cfg.scheduler != d.core.Scheduler {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xcbc: XNIT adoption cancelled before scheduler change: %w", err)
		}
		if err := d.ChangeScheduler(cfg.scheduler); err != nil {
			return nil, err
		}
		cfg.emit(Event{Stage: "scheduler",
			Message: fmt.Sprintf("scheduler changed to %s", cfg.scheduler)})
	}
	if len(cfg.packages) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xcbc: XNIT adoption cancelled before package installs: %w", err)
		}
		n, err := d.InstallPackages(cfg.packages...)
		if err != nil {
			return nil, err
		}
		cfg.emit(Event{Stage: "packages", Packages: n,
			Message: fmt.Sprintf("installed %d requested packages cluster-wide", n)})
	}
	return d, nil
}
