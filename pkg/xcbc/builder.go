package xcbc

import (
	"context"
	"fmt"

	"xcbc/internal/cluster"
	"xcbc/internal/core"
	"xcbc/internal/provision"
	"xcbc/internal/rpm"
)

// Builder deploys a cluster. Start validates the request synchronously,
// then runs the build as an asynchronous job on a bounded worker pool and
// returns a Handle for polling, event streaming, and cancellation. Deploy
// is the synchronous convenience wrapper: Start plus Wait. Open is Deploy
// plus Deployment.Open: build the cluster and hand back its operable
// day-2 resource in one call.
//
// Builds honor cancellation between provisioning waves; progress reaches
// both the Handle's journal and any WithProgress callback.
type Builder interface {
	Start(ctx context.Context) (*Handle, error)
	Deploy(ctx context.Context) (*Deployment, error)
	Open(ctx context.Context) (*Cluster, error)
}

// open runs the synchronous build path and opens the Cluster resource.
func open(ctx context.Context, b Builder) (*Cluster, error) {
	d, err := b.Deploy(ctx)
	if err != nil {
		return nil, err
	}
	return d.Open(), nil
}

// deploy runs the synchronous path shared by all builders. On ctx
// cancellation it does not just abandon the wait: the job's context
// derives from ctx so the build is already stopping, and deploy blocks
// until it actually has — the seed contract, and what lets callers reuse
// a shared engine (WithEngine) the moment Deploy returns.
func deploy(ctx context.Context, b Builder) (*Deployment, error) {
	h, err := b.Start(ctx)
	if err != nil {
		return nil, err
	}
	d, err := h.Wait(ctx)
	if err == nil {
		return d, nil
	}
	<-h.Done() // no-op when the error was the job's own terminal failure
	if jerr := h.Err(); jerr != nil {
		return nil, jerr
	}
	if d, ok := h.Deployment(); ok {
		return d, nil
	}
	return nil, err
}

// NewXCBC returns a builder for the bare-metal path: assemble the Rocks
// distribution with the XSEDE roll, install the frontend, kickstart every
// compute node in waves of WithParallelism overlapping installs, and start
// the subsystems — "all at once, from scratch".
func NewXCBC(opts ...Option) Builder {
	return &xcbcBuilder{cfg: newConfig(opts)}
}

type xcbcBuilder struct{ cfg *config }

func (b *xcbcBuilder) Start(ctx context.Context) (*Handle, error) {
	cfg := b.cfg
	if cfg.err != nil {
		return nil, cfg.err
	}
	scheduler := cfg.scheduler
	if scheduler == "" {
		scheduler = "torque"
	}
	if err := checkScheduler(scheduler); err != nil {
		return nil, err
	}
	rolls := cfg.rolls
	if !cfg.rollsSet {
		rolls = []string{"ganglia", "hpc"}
	}
	if err := checkRolls(rolls); err != nil {
		return nil, err
	}
	policy, err := cfg.powerPolicy.internal()
	if err != nil {
		return nil, err
	}
	hw, err := cfg.resolveHardware()
	if err != nil {
		return nil, err
	}
	// Pre-flight the Rocks diskless constraint synchronously so an
	// impossible request fails at Start, not minutes into an async build.
	if err := core.PreflightXCBC(hw); err != nil {
		return nil, translate(err)
	}
	eng := cfg.resolveEngine()
	// Always pass a non-nil slice: core treats nil OptionalRolls as "use
	// defaults", but WithRolls() with no names means "no optional rolls".
	opts := core.Options{
		Scheduler:       scheduler,
		OptionalRolls:   append(make([]string, 0, len(rolls)), rolls...),
		PowerPolicy:     policy,
		MonitorInterval: cfg.monitorInterval,
		Parallelism:     cfg.parallelism,
		Retries:         cfg.retries,
		InstallHook:     cfg.installHook,
	}
	return start(ctx, "xcbc/"+hw.Name, hw, func(jctx context.Context, emit func(Event) int) (*Deployment, error) {
		o := opts
		o.Progress = func(ev core.BuildEvent) {
			out := Event{Stage: ev.Stage, Node: ev.Node, Message: ev.Message,
				Packages: ev.Packages, Elapsed: ev.Elapsed}
			out.Seq = emit(out)
			cfg.emit(out)
		}
		d, err := core.BuildXCBCContext(jctx, eng, hw, o)
		if err != nil {
			return nil, translate(err)
		}
		return &Deployment{core: d}, nil
	}), nil
}

func (b *xcbcBuilder) Deploy(ctx context.Context) (*Deployment, error) {
	return deploy(ctx, b)
}

func (b *xcbcBuilder) Open(ctx context.Context) (*Cluster, error) { return open(ctx, b) }

// NewVendor returns a builder for a vendor-managed machine: the OS and a
// minimal package set installed by vendor tooling (which, unlike Rocks,
// handles diskless nodes), no XSEDE stack. Its Deployment is what NewXNIT
// adopts.
func NewVendor(opts ...Option) Builder {
	return &vendorBuilder{cfg: newConfig(opts)}
}

type vendorBuilder struct{ cfg *config }

// defaultBasePackages is the EL6-era ship state the paper's Limulus
// arrives with.
func defaultBasePackages() []*rpm.Package {
	return []*rpm.Package{
		rpm.NewPackage("kernel", "2.6.32-431.el6.sl", rpm.ArchX86_64).Build(),
		rpm.NewPackage("openssh-server", "5.3p1-94.el6", rpm.ArchX86_64).Build(),
		rpm.NewPackage("environment-modules", "3.2.10-2.el6", rpm.ArchX86_64).Build(),
	}
}

// prepare validates the vendor request and returns the build function.
// The vendor "build" is the machine's ship state — one engine advance, no
// per-node kickstarts — so unlike the XCBC path it is cheap enough to run
// either inline (Deploy) or as a job (Start).
func (b *vendorBuilder) prepare() (*cluster.Cluster, func(ctx context.Context, emit func(Event) int) (*Deployment, error), error) {
	cfg := b.cfg
	if cfg.err != nil {
		return nil, nil, cfg.err
	}
	if cfg.schedulerSet && cfg.scheduler != "" {
		if err := checkScheduler(cfg.scheduler); err != nil {
			return nil, nil, err
		}
	}
	policy, err := cfg.powerPolicy.internal()
	if err != nil {
		return nil, nil, err
	}
	hw, err := cfg.resolveHardware()
	if err != nil {
		return nil, nil, err
	}
	eng := cfg.resolveEngine()
	osName := cfg.vendorOS
	if osName == "" {
		osName = "Scientific Linux 6.5"
	}
	build := func(ctx context.Context, emit func(Event) int) (*Deployment, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !cfg.preProvisioned {
			base := cfg.basePackages
			if base == nil {
				base = defaultBasePackages()
			}
			if err := provision.VendorProvision(eng, hw, osName, base); err != nil {
				return nil, translate(err)
			}
			ev := Event{Stage: "vendor", Packages: len(base) * hw.NodeCount(),
				Message: fmt.Sprintf("vendor tooling installed %s on %d nodes", osName, hw.NodeCount())}
			ev.Seq = emit(ev)
			cfg.emit(ev)
		}
		d, err := core.NewVendorDeployment(eng, hw, cfg.scheduler, core.Options{
			PowerPolicy:     policy,
			MonitorInterval: cfg.monitorInterval,
		})
		if err != nil {
			return nil, translate(err)
		}
		return &Deployment{core: d}, nil
	}
	return hw, build, nil
}

func (b *vendorBuilder) Start(ctx context.Context) (*Handle, error) {
	hw, build, err := b.prepare()
	if err != nil {
		return nil, err
	}
	return start(ctx, "vendor/"+hw.Name, hw, build), nil
}

// Deploy runs the vendor build inline, without occupying a worker slot, so
// callers composing it with async builds (the control plane's xnit path)
// cannot deadlock against a saturated pool.
func (b *vendorBuilder) Deploy(ctx context.Context) (*Deployment, error) {
	_, build, err := b.prepare()
	if err != nil {
		return nil, err
	}
	return build(ctx, func(ev Event) int { return ev.Seq })
}

func (b *vendorBuilder) Open(ctx context.Context) (*Cluster, error) { return open(ctx, b) }

// NewXNIT returns a builder that converts an existing deployment in place:
// configure the XSEDE Yum repository with the recommended priority, install
// the requested profiles and packages, and optionally change the scheduler
// — all without touching the pre-existing cluster setup. Deploy returns
// the same Deployment, converted.
func NewXNIT(existing *Deployment, opts ...Option) Builder {
	return &xnitBuilder{existing: existing, cfg: newConfig(opts)}
}

type xnitBuilder struct {
	existing *Deployment
	cfg      *config
}

func (b *xnitBuilder) Start(ctx context.Context) (*Handle, error) {
	cfg := b.cfg
	d := b.existing
	if cfg.err != nil {
		return nil, cfg.err
	}
	if d == nil || d.core == nil {
		return nil, fmt.Errorf("%w: NewXNIT needs the deployment to convert", ErrNilDeployment)
	}
	if cfg.schedulerSet && cfg.scheduler != "" {
		if err := checkScheduler(cfg.scheduler); err != nil {
			return nil, err
		}
	}
	if err := checkProfiles(cfg.profiles); err != nil {
		return nil, err
	}
	return start(ctx, "xnit/"+d.core.Cluster.Name, d.core.Cluster, func(jctx context.Context, emit func(Event) int) (*Deployment, error) {
		record := func(ev Event) {
			ev.Seq = emit(ev)
			cfg.emit(ev)
		}
		// Idempotent repo configuration: a retry after a failed or cancelled
		// adoption must not duplicate the xsede entry.
		xnit := d.core.Repos.Lookup(XNITRepoID)
		if xnit == nil {
			var err error
			xnit, err = core.NewXNITRepository()
			if err != nil {
				return nil, translate(err)
			}
			core.ConfigureXNIT(d.core, xnit)
		}
		record(Event{Stage: "repo", Packages: xnit.Len(),
			Message: fmt.Sprintf("configured %s repository at priority %d", XNITRepoID, XNITPriority)})
		for _, profile := range cfg.profiles {
			if err := jctx.Err(); err != nil {
				return nil, fmt.Errorf("xcbc: XNIT adoption cancelled before profile %s: %w", profile, err)
			}
			n, err := d.core.InstallProfile(profile)
			if err != nil {
				return nil, translate(err)
			}
			record(Event{Stage: "profile", Packages: n,
				Message: fmt.Sprintf("installed profile %s cluster-wide", profile)})
		}
		if cfg.schedulerSet && cfg.scheduler != "" && cfg.scheduler != d.core.Scheduler {
			if err := jctx.Err(); err != nil {
				return nil, fmt.Errorf("xcbc: XNIT adoption cancelled before scheduler change: %w", err)
			}
			if err := d.ChangeScheduler(cfg.scheduler); err != nil {
				return nil, err
			}
			record(Event{Stage: "scheduler",
				Message: fmt.Sprintf("scheduler changed to %s", cfg.scheduler)})
		}
		if len(cfg.packages) > 0 {
			if err := jctx.Err(); err != nil {
				return nil, fmt.Errorf("xcbc: XNIT adoption cancelled before package installs: %w", err)
			}
			n, err := d.InstallPackages(cfg.packages...)
			if err != nil {
				return nil, err
			}
			record(Event{Stage: "packages", Packages: n,
				Message: fmt.Sprintf("installed %d requested packages cluster-wide", n)})
		}
		return d, nil
	}), nil
}

func (b *xnitBuilder) Deploy(ctx context.Context) (*Deployment, error) {
	return deploy(ctx, b)
}

func (b *xnitBuilder) Open(ctx context.Context) (*Cluster, error) { return open(ctx, b) }
