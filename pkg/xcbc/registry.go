package xcbc

import (
	"sort"

	"xcbc/internal/cluster"
	"xcbc/internal/core"
	"xcbc/internal/repo"
	"xcbc/internal/rocks"
)

// Release versions of the reproduced stack (XCBC 0.9 on Rocks 6.1.1 /
// CentOS 6.5, as the paper describes).
const (
	XCBCVersion   = core.XCBCVersion
	RocksVersion  = core.RocksVersion
	CentOSVersion = core.CentOSVersion
)

// Clusters lists the cluster names WithCluster accepts, sorted. The
// catalog itself lives in internal/cluster so the fleet manager shares it.
func Clusters() []string { return cluster.CatalogNames() }

// NewCluster builds a fresh, powered-off instance of a cataloged machine.
func NewCluster(name string) (*cluster.Cluster, error) {
	hw, err := cluster.FromCatalog(name)
	if err != nil {
		return nil, wrapName(ErrUnknownCluster, name)
	}
	return hw, nil
}

// Schedulers lists the job managers the XCBC build supports (Table 1:
// choose one).
func Schedulers() []string { return append([]string(nil), core.Schedulers...) }

// Rolls lists the optional Rocks rolls of Table 1.
func Rolls() []string { return append([]string(nil), core.OptionalRollNames...) }

// RollDescription returns Table 1's description for an optional roll.
func RollDescription(name string) string { return core.RollDescription(name) }

// Profiles lists the curated XNIT package profiles, sorted.
func Profiles() []string {
	out := core.Profiles()
	sort.Strings(out)
	return out
}

// BuildDistribution assembles the complete XCBC install tree (base roll,
// XSEDE roll for the scheduler, plus optional rolls) without deploying it —
// the artifact a site would burn to install media.
func BuildDistribution(scheduler string, optionalRolls ...string) (*rocks.Distribution, error) {
	if err := checkScheduler(scheduler); err != nil {
		return nil, err
	}
	if err := checkRolls(optionalRolls); err != nil {
		return nil, err
	}
	return core.BuildDistribution(scheduler, optionalRolls...)
}

// NewXNITRepository creates the XSEDE Yum repository pre-populated with the
// full XNIT catalog, ready to serve or mirror.
func NewXNITRepository() (*repo.Repository, error) { return core.NewXNITRepository() }

// XNITRepoID is the repository ID of the XSEDE Yum repository.
const XNITRepoID = core.XNITRepoID

// XNITPriority is the yum-plugin-priorities priority the XNIT README
// recommends, below vendor/base repositories.
const XNITPriority = core.XNITPriority

func checkScheduler(name string) error {
	for _, s := range core.Schedulers {
		if s == name {
			return nil
		}
	}
	return wrapName(ErrUnknownScheduler, name)
}

func checkRolls(names []string) error {
	known := make(map[string]bool, len(core.OptionalRollNames))
	for _, r := range core.OptionalRollNames {
		known[r] = true
	}
	for _, n := range names {
		if !known[n] {
			return wrapName(ErrUnknownRoll, n)
		}
	}
	return nil
}

func checkProfiles(names []string) error {
	known := make(map[string]bool)
	for _, p := range core.Profiles() {
		known[p] = true
	}
	for _, n := range names {
		if !known[n] {
			return wrapName(ErrUnknownProfile, n)
		}
	}
	return nil
}
