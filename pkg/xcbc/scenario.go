package xcbc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"xcbc/internal/fleet"
	"xcbc/internal/scenario"
)

// Scenario scripting: declarative, seed-deterministic chaos runs over a
// fleet. A scenario provisions the fleet, injects faults (kickstart
// failures, node quarantine, repository outages, job floods), runs day-2
// operations (workloads, metrics, wave-parallel update rollouts), asserts
// invariants, and emits a machine-readable trace that is byte-identical
// for a given scenario and seed — the regression substrate every future
// scale and performance change is validated against.

// Scenario sentinels; test with errors.Is.
var (
	// ErrBadScenario reports scenario JSON that fails decoding or
	// validation (unknown phases, negative counts, unknown fault kinds).
	ErrBadScenario = errors.New("xcbc: invalid scenario")
	// ErrUnknownScenario reports a built-in scenario name absent from
	// BuiltinScenarios().
	ErrUnknownScenario = errors.New("xcbc: unknown scenario")
)

// Scenario is a parsed, validated scenario script.
type Scenario struct {
	sc *scenario.Scenario
}

// LoadScenario parses and validates scenario JSON. It never panics,
// whatever the input; all failures wrap ErrBadScenario.
func LoadScenario(data []byte) (*Scenario, error) {
	sc, err := scenario.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	return &Scenario{sc: sc}, nil
}

// BuiltinScenarios lists the built-in scenario names in curated order.
func BuiltinScenarios() []string { return scenario.Builtins() }

// BuiltinScenario returns a fresh copy of a named built-in scenario.
func BuiltinScenario(name string) (*Scenario, error) {
	sc := scenario.Builtin(name)
	if sc == nil {
		return nil, wrapName(ErrUnknownScenario, name)
	}
	return &Scenario{sc: sc}, nil
}

// Name returns the scenario's name.
func (s *Scenario) Name() string { return s.sc.Name }

// Description returns the scenario's one-line description.
func (s *Scenario) Description() string { return s.sc.Description }

// Seed returns the deterministic RNG seed the run is keyed by.
func (s *Scenario) Seed() int64 { return s.sc.Seed }

// SetSeed overrides the scenario's RNG seed — the same script replayed
// under a different seed explores a different fault pattern.
func (s *Scenario) SetSeed(seed int64) { s.sc.Seed = seed }

// Members returns the fleet size the scenario runs at.
func (s *Scenario) Members() int { return s.sc.Fleet.Members }

// Phases returns how many phases the script has.
func (s *Scenario) Phases() int { return len(s.sc.Phases) }

// RequiresFreshFleet reports whether the scenario arms pre-provision
// kickstart faults and therefore must run on a fleet whose builds have
// not started (RunScenario always satisfies this; Fleet.RunScenario
// rejects the combination otherwise).
func (s *Scenario) RequiresFreshFleet() bool { return s.sc.HasKickstartFault() }

// JSON renders the scenario as indented JSON (the same form LoadScenario
// accepts).
func (s *Scenario) JSON() ([]byte, error) { return s.sc.Encode() }

// FleetSpec returns the fleet sizing a standalone run would use.
func (s *Scenario) FleetSpec() FleetSpec {
	spec := s.sc.FleetSpec()
	return FleetSpec{
		Name: spec.Name, Members: spec.Members, Cluster: spec.Cluster,
		Nodes: spec.Nodes, Scheduler: spec.Scheduler,
		Parallelism: spec.Parallelism, Retries: spec.Retries, Workers: spec.Workers,
	}
}

// TraceEvent is one entry of a scenario trace.
type TraceEvent struct {
	Seq    int    `json:"seq"`
	Phase  int    `json:"phase"` // index into the scenario's phases, -1 for run-level entries
	Kind   string `json:"kind"`
	Member string `json:"member,omitempty"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// ScenarioStats aggregates a finished run.
type ScenarioStats struct {
	Members          int           `json:"members"`
	Ready            int           `json:"ready"`
	Failed           int           `json:"failed"`
	Cancelled        int           `json:"cancelled"`
	QuarantinedNodes int           `json:"quarantined_nodes"`
	JobsSubmitted    int           `json:"jobs_submitted"`
	JobsCancelled    int           `json:"jobs_cancelled"`
	UpdatesApplied   int           `json:"updates_applied"`
	SimulatedEnd     time.Duration `json:"simulated_end"`
}

// ScenarioResult is a finished scenario run.
type ScenarioResult struct {
	r *scenario.Result
}

// Scenario returns the name of the scenario that ran.
func (r *ScenarioResult) Scenario() string { return r.r.Scenario }

// Seed returns the seed the run used.
func (r *ScenarioResult) Seed() int64 { return r.r.Seed }

// Passed reports whether every asserted invariant held.
func (r *ScenarioResult) Passed() bool { return r.r.Passed }

// Violations returns the failed invariants, empty when Passed.
func (r *ScenarioResult) Violations() []string {
	return append([]string(nil), r.r.Violations...)
}

// Stats returns the run's aggregate numbers.
func (r *ScenarioResult) Stats() ScenarioStats {
	st := r.r.Stats
	return ScenarioStats{
		Members: st.Members, Ready: st.Ready, Failed: st.Failed,
		Cancelled: st.Cancelled, QuarantinedNodes: st.QuarantinedNodes,
		JobsSubmitted: st.JobsSubmitted, JobsCancelled: st.JobsCancelled,
		UpdatesApplied: st.UpdatesApplied, SimulatedEnd: st.SimulatedEnd,
	}
}

// Trace returns the run's event trace in order.
func (r *ScenarioResult) Trace() []TraceEvent {
	out := make([]TraceEvent, len(r.r.Events))
	for i, ev := range r.r.Events {
		out[i] = TraceEvent(ev)
	}
	return out
}

// TraceJSONL renders the trace as JSON lines — the byte-stable artifact
// golden-trace regression tests compare.
func (r *ScenarioResult) TraceJSONL() []byte { return r.r.TraceJSONL() }

// RunScenario builds a fleet from the scenario's own spec and drives it
// through the script. The returned error covers mechanical failures
// (context cancellation, impossible specs); invariant violations are
// reported through the result's Passed and Violations.
func RunScenario(ctx context.Context, s *Scenario) (*ScenarioResult, error) {
	res, err := scenario.Run(ctx, s.sc)
	if err != nil {
		return nil, translateScenario(err)
	}
	return &ScenarioResult{r: res}, nil
}

// runScenarioOn is Fleet.RunScenario's implementation.
func runScenarioOn(ctx context.Context, fl *fleet.Fleet, s *Scenario) (*ScenarioResult, error) {
	return runScenarioObserved(ctx, fl, s, nil)
}

// runScenarioObserved is Fleet.RunScenarioObserved's implementation.
func runScenarioObserved(ctx context.Context, fl *fleet.Fleet, s *Scenario, obs func(TraceEvent)) (*ScenarioResult, error) {
	var inner scenario.Observer
	if obs != nil {
		inner = func(ev scenario.Event) { obs(TraceEvent(ev)) }
	}
	res, err := scenario.RunOnObserved(ctx, fl, s.sc, inner)
	if err != nil {
		return nil, translateScenario(err)
	}
	return &ScenarioResult{r: res}, nil
}

// ResultJSON renders the full result — stats, violations, and the
// complete trace — as JSON that RestoreScenarioResult round-trips. This
// is the persistence form durable stores write at run settlement.
func (r *ScenarioResult) ResultJSON() ([]byte, error) {
	return json.Marshal(r.r)
}

// RestoreScenarioResult reconstructs a settled scenario result from the
// JSON that ResultJSON produced — the path a restarted store takes to
// reload finished runs without replaying them.
func RestoreScenarioResult(data []byte) (*ScenarioResult, error) {
	var res scenario.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("xcbc: restore scenario result: %w", err)
	}
	return &ScenarioResult{r: &res}, nil
}

func translateScenario(err error) error {
	if errors.Is(err, scenario.ErrBadScenario) {
		return fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if errors.Is(err, fleet.ErrBadSpec) {
		return fmt.Errorf("%w: %v", ErrBadFleetSpec, err)
	}
	return err
}
