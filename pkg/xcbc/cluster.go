package xcbc

import (
	"time"

	"xcbc/internal/core"
	"xcbc/internal/monitor"
	"xcbc/internal/sched"
)

// Cluster is a live, operable cluster: the day-2 surface over a ready
// Deployment. Where Builder/Handle cover day 1 (build → ready), Cluster
// covers everything after — batch jobs, monitoring, alerting, HPL
// validation, and software currency — which is what the paper's campus
// sites actually run.
//
// Obtain one from Handle.Cluster once a deployment is ready, from
// Builder.Open to build and open in one call, or from Deployment.Open.
// All methods are safe for concurrent use: every operation is serialized
// through one adapter per Deployment, because the subsystems share an
// unsynchronized discrete-event engine. Two Cluster values opened from the
// same Deployment share that adapter and stay mutually safe.
type Cluster struct {
	d   *Deployment
	ops *core.Operations
}

// Deployment returns the underlying deployment for build-time facts
// (install duration, quarantined nodes) and subsystem escape hatches.
func (c *Cluster) Deployment() *Deployment { return c.d }

// Name returns the cluster's hardware name.
func (c *Cluster) Name() string { return c.d.core.Cluster.Name }

// Scheduler returns the active job manager name, "" if none.
func (c *Cluster) Scheduler() string { return c.d.core.Scheduler }

// JobSpec describes a batch job to submit. Cores is required; a zero
// Walltime defaults to one hour and a zero Runtime to half the walltime
// (the simulation's stand-in for "how long the science actually takes").
type JobSpec struct {
	Name     string
	User     string
	Cores    int
	Walltime time.Duration
	Runtime  time.Duration
	Script   string
}

// JobState labels a job's position in its lifecycle, as reported by
// JobInfo.State: "queued", "running", "completed", "cancelled", "timeout".
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobCompleted = "completed"
	JobCancelled = "cancelled"
	JobTimeout   = "timeout"
)

// JobInfo is an immutable snapshot of one batch job. Times are virtual
// (durations since simulation start).
type JobInfo struct {
	ID        int
	Name      string
	User      string
	Cores     int
	State     string
	Script    string
	Walltime  time.Duration
	Runtime   time.Duration
	Submitted time.Duration
	Started   time.Duration
	Ended     time.Duration
	Nodes     []string // allocation, sorted; nil while queued
	Requeued  bool     // a node failure bounced it back to the queue
}

func jobInfoOf(v core.JobView) JobInfo {
	return JobInfo{
		ID: v.ID, Name: v.Name, User: v.User, Cores: v.Cores,
		State: v.State, Script: v.Script,
		Walltime: v.Walltime, Runtime: v.Runtime,
		Submitted: v.Submitted.Duration(), Started: v.Started.Duration(),
		Ended: v.Ended.Duration(), Nodes: v.Nodes, Requeued: v.Requeued,
	}
}

// SubmitJob enqueues a batch job and returns its snapshot with the
// assigned ID. A job that fits free cores starts immediately ("running");
// otherwise it waits in policy order. Fails with ErrNoScheduler on a
// cluster without a batch system and ErrBadJob on an impossible request.
func (c *Cluster) SubmitJob(spec JobSpec) (JobInfo, error) {
	j := &sched.Job{
		Name: spec.Name, User: spec.User, Cores: spec.Cores,
		Walltime: spec.Walltime, Runtime: spec.Runtime, Script: spec.Script,
	}
	v, err := c.ops.SubmitJob(j)
	if err != nil {
		return JobInfo{}, translate(err)
	}
	return jobInfoOf(v), nil
}

// CancelJob removes a queued job or kills a running one; finished or
// unknown IDs fail with ErrUnknownJob.
func (c *Cluster) CancelJob(id int) error {
	return translate(c.ops.CancelJob(id))
}

// Job returns a snapshot of one job across queue, running set, and
// history.
func (c *Cluster) Job(id int) (JobInfo, bool) {
	v, ok := c.ops.Job(id)
	if !ok {
		return JobInfo{}, false
	}
	return jobInfoOf(v), true
}

// Jobs returns snapshots of every known job: queued (policy order), then
// running (by ID), then finished (completion order).
func (c *Cluster) Jobs() []JobInfo {
	views := c.ops.Jobs()
	out := make([]JobInfo, 0, len(views))
	for _, v := range views {
		out = append(out, jobInfoOf(v))
	}
	return out
}

// Exec runs one scheduler-native command line (qsub/qstat/qdel,
// sbatch/squeue/scancel, module avail), serialized with every other
// cluster operation.
func (c *Cluster) Exec(line string) (string, error) {
	out, err := c.ops.Exec(line)
	return out, translate(err)
}

// Advance runs the cluster forward by dt of simulated time: jobs finish,
// power policies act, scheduled monitor polls fire. It returns the new
// virtual now as a duration since simulation start.
func (c *Cluster) Advance(dt time.Duration) time.Duration {
	return c.ops.Advance(dt).Duration()
}

// Now returns the cluster's current virtual time.
func (c *Cluster) Now() time.Duration { return c.ops.Now().Duration() }

// NodeMetrics is the latest monitoring sample set for one host.
type NodeMetrics struct {
	Host       string
	Load       float64 // fraction of cores busy, [0,1]
	PowerWatts float64
	Cores      int
}

// ClusterMetrics is one observation of the whole cluster.
type ClusterMetrics struct {
	At           time.Duration // virtual sample time
	Polls        int           // total poll rounds so far
	ClusterLoad  float64       // mean load_one across reporting hosts
	Nodes        []NodeMetrics
	ActiveAlerts []string // firing alert keys, "host/rule"
}

func metricsOf(s core.MetricsSnapshot) ClusterMetrics {
	out := ClusterMetrics{
		At: s.At.Duration(), Polls: s.Polls, ClusterLoad: s.ClusterLoad,
		ActiveAlerts: s.ActiveAlerts,
	}
	for _, n := range s.Nodes {
		out.Nodes = append(out.Nodes, NodeMetrics(n))
	}
	return out
}

// Metrics polls every powered-on node at the current virtual time (an
// on-demand gmond round — no need to wait for a scheduled poll), evaluates
// alert rules, and returns the snapshot.
func (c *Cluster) Metrics() ClusterMetrics {
	return metricsOf(c.ops.SampleMetrics())
}

// AlertInfo is one alert transition: raised or cleared.
type AlertInfo struct {
	At     time.Duration // virtual time of the transition
	Host   string
	Rule   string
	Firing bool
	Detail string
}

// Alerts re-evaluates alert rules (so a host silent across recent
// Advances trips host-down) and returns the firing alert keys plus the
// transition log. Default rules watch load and power draw; add more with
// AddAlertRule.
func (c *Cluster) Alerts() (active []string, log []AlertInfo) {
	act, raw := c.ops.Alerts()
	log = make([]AlertInfo, 0, len(raw))
	for _, a := range raw {
		log = append(log, AlertInfo{At: a.At.Duration(), Host: a.Host,
			Rule: a.Rule, Firing: a.Firing, Detail: a.Detail})
	}
	return act, log
}

// AddAlertRule registers a threshold rule: fire when metric (one of
// "load_one", "power_watts", "cpu_num") crosses threshold in the given
// direction, clear when it comes back.
func (c *Cluster) AddAlertRule(name, metric string, above bool, threshold float64) {
	cond := monitor.Below
	if above {
		cond = monitor.Above
	}
	c.ops.AddAlertRule(monitor.Rule{Name: name, Metric: metric, Cond: cond, Threshold: threshold})
}

// Validation reports an HPL acceptance run: the analytic Rmax model at the
// largest problem fitting cluster memory, plus (when requested) a small
// measured LU solve on the host whose residual check proves the numerics.
type Validation struct {
	N            int     // modelled problem size
	RpeakGF      float64 // theoretical peak, GFLOPS
	RmaxGF       float64 // modelled sustained, GFLOPS
	Efficiency   float64 // RmaxGF / RpeakGF
	ModelElapsed time.Duration

	SmokeRun      bool // a measured solve was performed
	SmokeN        int
	SmokeGFLOPS   float64
	SmokeResidual float64
	SmokePass     bool
}

// ValidateOption tunes Validate.
type ValidateOption func(*validateConfig)

type validateConfig struct {
	memFraction float64
	smokeN      int
}

// WithMemFraction sets the fraction of total cluster memory the modelled
// problem may use; default 0.8 (the standard HPL sizing rule).
func WithMemFraction(f float64) ValidateOption {
	return func(c *validateConfig) { c.memFraction = f }
}

// WithSmokeSize sets the size of the measured on-host LU solve; default
// 128, 0 disables the measured run (model only).
func WithSmokeSize(n int) ValidateOption {
	return func(c *validateConfig) { c.smokeN = n }
}

// Validate runs the HPL acceptance check the paper recommends before
// putting a cluster into service.
func (c *Cluster) Validate(opts ...ValidateOption) (Validation, error) {
	cfg := validateConfig{memFraction: 0.8, smokeN: 128}
	for _, o := range opts {
		o(&cfg)
	}
	v, err := c.ops.Validate(cfg.memFraction, cfg.smokeN)
	if err != nil {
		return Validation{}, translate(err)
	}
	out := Validation{
		N: v.N, RpeakGF: v.RpeakGF, RmaxGF: v.RmaxGF,
		Efficiency: v.Efficiency, ModelElapsed: v.ModelElapsed,
	}
	if v.SmokeRun {
		out.SmokeRun = true
		out.SmokeN = v.Smoke.N
		out.SmokeGFLOPS = v.Smoke.GFLOPS
		out.SmokeResidual = v.Smoke.Residual
		out.SmokePass = v.Smoke.Pass
	}
	return out, nil
}

// CheckUpdates runs the paper's periodic update check on every node under
// the given policy over the cluster's attached repositories; now stamps
// the notification reports.
func (c *Cluster) CheckUpdates(policy UpdatePolicy, now time.Time) UpdateCheck {
	notes := c.ops.CheckUpdates(policy.internal(), now)
	out := UpdateCheck{Policy: policy, ByNode: make(map[string]NodeUpdates, len(notes))}
	for node, n := range notes { //detlint:ordered map-to-map rebuild under distinct keys; Summary is pure
		out.ByNode[node] = NodeUpdates{Pending: len(n.Pending), Applied: len(n.Applied),
			Summary: n.Summary()}
	}
	return out
}
