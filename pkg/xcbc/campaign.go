package xcbc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"xcbc/internal/campaign"
	"xcbc/internal/scenario"
)

// Campaigns: generative chaos at sweep scale. A campaign generates one
// valid scenario per seed (GenerateScenario), runs each on private fleets
// across a bounded worker pool, and checks metamorphic invariants that go
// beyond the scripts' own asserts — trace determinism (run twice,
// byte-compare), jobs/members/nodes conservation recomputed from the raw
// trace, and WAL crash/recovery equivalence. Any failing seed is
// delta-debugged down to a minimal standalone repro script.

// ErrBadCampaign reports an impossible campaign spec (zero seeds,
// negative workers or shrink budget). Test with errors.Is.
var ErrBadCampaign = errors.New("xcbc: invalid campaign spec")

// Campaign seed states, as reported per swept seed and per failure.
const (
	CampaignSeedPassed = campaign.StatePassed
	CampaignSeedFailed = campaign.StateFailed
	CampaignSeedError  = campaign.StateError
)

// CampaignCheckHook contributes extra violations to every generated run's
// check list — the deterministic fault-injection seam campaign tests use
// to plant invariant bugs. The hook must be a pure function of (scenario,
// result) or shrunk repros will not reproduce.
type CampaignCheckHook func(*Scenario, *ScenarioResult) []string

// CampaignSpec configures a campaign sweep.
type CampaignSpec struct {
	// Seeds is how many consecutive seeds to sweep; must be >= 1.
	Seeds int `json:"seeds"`
	// StartSeed is the first seed (shard a seed space by starting
	// campaigns at different offsets).
	StartSeed int64 `json:"start_seed,omitempty"`
	// Workers bounds concurrent seed runs (0 = min(8, GOMAXPROCS)).
	Workers int `json:"workers,omitempty"`
	// ShrinkBudget caps shrink evaluations per failure (0 = default).
	ShrinkBudget int `json:"shrink_budget,omitempty"`
	// CheckHook, when set, is consulted on every run. Not serialized.
	CheckHook CampaignCheckHook `json:"-"`
}

// Validate rejects impossible specs; failures wrap ErrBadCampaign.
func (s CampaignSpec) Validate() error {
	if err := s.inner().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCampaign, err)
	}
	return nil
}

func (s CampaignSpec) inner() campaign.Spec {
	in := campaign.Spec{
		Seeds: s.Seeds, StartSeed: s.StartSeed,
		Workers: s.Workers, ShrinkBudget: s.ShrinkBudget,
	}
	if hook := s.CheckHook; hook != nil {
		in.CheckHook = func(sc *scenario.Scenario, res *scenario.Result) []string {
			return hook(&Scenario{sc: sc}, &ScenarioResult{r: res})
		}
	}
	return in
}

// CampaignFailure is one failing seed's verdict with its minimized repro:
// a standalone scenario script (loadable by LoadScenario) that reproduces
// the violations deterministically, plus what shrinking it cost.
type CampaignFailure struct {
	Seed        int64           `json:"seed"`
	Violations  []string        `json:"violations"`
	Repro       json.RawMessage `json:"repro"`
	ReproPhases int             `json:"repro_phases"`
	ShrinkEvals int             `json:"shrink_evals"`
}

// CampaignSeedOutcome is one swept seed's result, delivered to the
// progress observer in seed order.
type CampaignSeedOutcome struct {
	Seed       int64            `json:"seed"`
	State      string           `json:"state"`
	Violations []string         `json:"violations,omitempty"`
	Error      string           `json:"error,omitempty"`
	Failure    *CampaignFailure `json:"failure,omitempty"`
}

// CampaignResult summarizes a finished (or interrupted) campaign.
type CampaignResult struct {
	Seeds     int               `json:"seeds"`
	StartSeed int64             `json:"start_seed"`
	Completed int               `json:"completed"`
	Passed    int               `json:"passed"`
	Failed    int               `json:"failed"`
	Errors    int               `json:"errors"`
	Failures  []CampaignFailure `json:"failures,omitempty"`
}

// Clean reports a campaign that completed every seed without failures.
func (r *CampaignResult) Clean() bool {
	return r.Completed == r.Seeds && r.Failed == 0 && r.Errors == 0
}

// GenerateScenario deterministically derives a random valid scenario from
// a seed: same seed, byte-identical script. Generated scenarios always
// pass validation and are constructed so their own asserts hold on a
// correct engine — a violation from one is a finding, not noise.
func GenerateScenario(seed int64) *Scenario {
	return &Scenario{sc: scenario.Generate(seed)}
}

// ShrinkScenario minimizes sc while fails keeps returning true for the
// candidate, evaluating at most maxEvals candidates (0 = default budget).
// The input is never mutated; every candidate offered to fails is valid.
func ShrinkScenario(sc *Scenario, fails func(*Scenario) bool, maxEvals int) (*Scenario, int) {
	res := scenario.Shrink(sc.sc, func(cand *scenario.Scenario) bool {
		return fails(&Scenario{sc: cand})
	}, maxEvals)
	return &Scenario{sc: res.Scenario}, res.Evals
}

// RunCampaign sweeps spec.Seeds generated scenarios and returns the
// campaign's result. Mechanical problems (bad spec, cancellation) surface
// as the error; invariant violations are campaign data, in the result.
func RunCampaign(ctx context.Context, spec CampaignSpec) (*CampaignResult, error) {
	return RunCampaignObserved(ctx, spec, nil)
}

// RunCampaignObserved is RunCampaign with a per-seed progress observer,
// invoked in seed order (nil behaves like RunCampaign) — the seam the
// control plane taps to journal campaign progress. On cancellation the
// partial result is returned alongside the context error.
func RunCampaignObserved(ctx context.Context, spec CampaignSpec, onSeed func(CampaignSeedOutcome)) (*CampaignResult, error) {
	var obs func(campaign.SeedOutcome)
	if onSeed != nil {
		obs = func(out campaign.SeedOutcome) { onSeed(campaignOutcomeOf(out)) }
	}
	res, err := campaign.RunObserved(ctx, spec.inner(), obs)
	if res == nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCampaign, err)
	}
	out := &CampaignResult{
		Seeds: res.Seeds, StartSeed: res.StartSeed, Completed: res.Completed,
		Passed: res.Passed, Failed: res.Failed, Errors: res.Errors,
	}
	for _, f := range res.Failures {
		out.Failures = append(out.Failures, CampaignFailure(f))
	}
	return out, err
}

func campaignOutcomeOf(out campaign.SeedOutcome) CampaignSeedOutcome {
	o := CampaignSeedOutcome{
		Seed: out.Seed, State: out.State,
		Violations: out.Violations, Error: out.Error,
	}
	if out.Failure != nil {
		f := CampaignFailure(*out.Failure)
		o.Failure = &f
	}
	return o
}
