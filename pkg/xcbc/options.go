package xcbc

import (
	"fmt"
	"time"

	"xcbc/internal/cluster"
	"xcbc/internal/power"
	"xcbc/internal/rpm"
	"xcbc/internal/sim"
)

// Event is one step of a long-running deployment, delivered through
// WithProgress and Handle.Events. Stage names: "distribution", "frontend",
// "compute", "wave", "quarantine", "subsystems" (XCBC path); "vendor"
// (vendor path); "repo", "profile", "scheduler", "packages" (XNIT path).
// Elapsed is simulated time. Seq is the event's position in the
// deployment's journal — monotonically increasing, usable as a resume
// cursor with Handle.Events.
type Event struct {
	Seq      int
	Stage    string
	Node     string
	Message  string
	Packages int
	Elapsed  time.Duration
}

// PowerPolicy selects node power management by name.
type PowerPolicy string

// Power policies.
const (
	PowerAlwaysOn  PowerPolicy = "always-on"
	PowerOnDemand  PowerPolicy = "on-demand"
	PowerScheduled PowerPolicy = "scheduled"
)

func (p PowerPolicy) internal() (power.Policy, error) {
	switch p {
	case "", PowerAlwaysOn:
		return power.AlwaysOn, nil
	case PowerOnDemand:
		return power.OnDemand, nil
	case PowerScheduled:
		return power.Scheduled, nil
	}
	return power.AlwaysOn, wrapName(ErrUnknownPowerPolicy, string(p))
}

// config accumulates options for any of the three builders; each Deploy
// reads the fields relevant to its path.
type config struct {
	clusterName     string
	hardware        *cluster.Cluster
	engine          *sim.Engine
	scheduler       string
	schedulerSet    bool
	rolls           []string
	rollsSet        bool
	powerPolicy     PowerPolicy
	monitorInterval time.Duration
	nodeCount       int
	progress        func(Event)
	parallelism     int
	retries         int
	installHook     func(node string, attempt int) error

	vendorOS       string
	basePackages   []*rpm.Package
	preProvisioned bool

	profiles []string
	packages []string

	err error // first option-construction error, surfaced at Deploy
}

func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *config) emit(ev Event) {
	if c.progress != nil {
		c.progress(ev)
	}
}

// Option configures a builder.
type Option func(*config)

// WithCluster selects hardware from the catalog by name (see Clusters()).
func WithCluster(name string) Option {
	return func(c *config) { c.clusterName = name }
}

// WithHardware supplies an explicit hardware description instead of a
// catalog name. The cluster is used as-is (escape hatch for custom
// machines).
func WithHardware(hw *cluster.Cluster) Option {
	return func(c *config) { c.hardware = hw }
}

// WithEngine shares a simulation engine across deployments (campus and
// national ends of a bridging scenario, for example). A fresh engine is
// created when omitted.
func WithEngine(eng *sim.Engine) Option {
	return func(c *config) { c.engine = eng }
}

// WithScheduler selects the job manager (see Schedulers()). The XCBC
// default is "torque"; on the vendor path an empty default means no batch
// system; on the XNIT path it requests an in-place scheduler change.
func WithScheduler(name string) Option {
	return func(c *config) { c.scheduler = name; c.schedulerSet = true }
}

// WithRolls selects the optional Rocks rolls to include (see Rolls()).
// The default is ganglia and hpc. Passing no names builds the bare base +
// XSEDE distribution.
func WithRolls(names ...string) Option {
	return func(c *config) { c.rolls = names; c.rollsSet = true }
}

// WithPowerPolicy selects node power management; default PowerAlwaysOn.
func WithPowerPolicy(p PowerPolicy) Option {
	return func(c *config) { c.powerPolicy = p }
}

// WithMonitorInterval sets the gmetad poll period; default one minute.
func WithMonitorInterval(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			c.fail(fmt.Errorf("xcbc: negative monitor interval %v", d))
			return
		}
		c.monitorInterval = d
	}
}

// WithNodeCount resizes the compute side of the selected hardware to n
// nodes before deployment: extra nodes are cloned from the machine's last
// compute node, surplus nodes are removed. The frontend is not counted.
func WithNodeCount(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.fail(wrapName(ErrBadNodeCount, fmt.Sprint(n)))
			return
		}
		c.nodeCount = n
	}
}

// WithProgress registers a callback receiving an Event after each
// deployment step. Events arrive synchronously on the build goroutine (the
// Deploy caller's goroutine only when the build runs synchronously); the
// same events land in the Handle's journal regardless.
func WithProgress(fn func(Event)) Option {
	return func(c *config) { c.progress = fn }
}

// WithParallelism sets the compute-install wave width on the XCBC path: how
// many kickstarts overlap, bounded in practice by what the frontend can
// serve. A wave's simulated cost is its slowest member, not the sum.
// Default 1 (sequential); n < 0 is an error.
func WithParallelism(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail(fmt.Errorf("%w: negative parallelism %d", ErrBadOption, n))
			return
		}
		c.parallelism = n
	}
}

// WithRetries sets how many times a failed compute install is re-attempted
// (with simulated backoff) before the node is quarantined and the build
// moves on without it. Default 0; n < 0 is an error.
func WithRetries(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail(fmt.Errorf("%w: negative retries %d", ErrBadOption, n))
			return
		}
		c.retries = n
	}
}

// WithInstallHook registers a function run before every node install
// attempt (attempt numbering starts at 1); returning an error fails that
// attempt, which wave installs retry per WithRetries. It is the
// fault-injection seam for tests and chaos drills, and — because it runs on
// the build goroutine — a way to throttle or gate builds.
func WithInstallHook(fn func(node string, attempt int) error) Option {
	return func(c *config) { c.installHook = fn }
}

// WithVendorOS names the operating system the vendor path installs;
// default "Scientific Linux 6.5" (the Limulus ship state).
func WithVendorOS(name string) Option {
	return func(c *config) { c.vendorOS = name }
}

// WithBasePackages overrides the base package set the vendor path
// installs on every node.
func WithBasePackages(pkgs ...*rpm.Package) Option {
	return func(c *config) { c.basePackages = pkgs }
}

// WithPreProvisioned tells the vendor builder the hardware already runs an
// OS and packages (for example, hand-provisioned in a training exercise):
// skip vendor provisioning and only assemble the deployment around it.
func WithPreProvisioned() Option {
	return func(c *config) { c.preProvisioned = true }
}

// WithProfiles requests XNIT package profiles to install during adoption
// (see Profiles()).
func WithProfiles(names ...string) Option {
	return func(c *config) { c.profiles = append(c.profiles, names...) }
}

// WithPackages requests individual packages (with dependencies) to install
// cluster-wide during XNIT adoption.
func WithPackages(names ...string) Option {
	return func(c *config) { c.packages = append(c.packages, names...) }
}

func wrapName(sentinel error, name string) error {
	return fmt.Errorf("%w: %q", sentinel, name)
}

// newConfig applies options over defaults.
func newConfig(opts []Option) *config {
	c := &config{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// resolveHardware picks the cluster to deploy on: explicit hardware wins,
// then the catalog name, then the default LittleFe. WithNodeCount is
// applied afterwards.
func (c *config) resolveHardware() (*cluster.Cluster, error) {
	hw := c.hardware
	if hw == nil {
		name := c.clusterName
		if name == "" {
			name = "littlefe"
		}
		var err error
		hw, err = NewCluster(name)
		if err != nil {
			return nil, err
		}
	}
	if c.nodeCount > 0 {
		if err := resizeComputes(hw, c.nodeCount); err != nil {
			return nil, err
		}
	}
	return hw, nil
}

// resolveEngine returns the configured engine or a fresh one.
func (c *config) resolveEngine() *sim.Engine {
	if c.engine != nil {
		return c.engine
	}
	return sim.NewEngine()
}

// resizeComputes grows or shrinks a cluster's compute set to n nodes via
// the shared internal/cluster helper, mapping failures onto the SDK
// sentinel.
func resizeComputes(hw *cluster.Cluster, n int) error {
	if err := cluster.ResizeComputes(hw, n); err != nil {
		return fmt.Errorf("%w: %v", ErrBadNodeCount, err)
	}
	return nil
}
