package xcbc

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestXCBCDeploy(t *testing.T) {
	var events []Event
	d, err := NewXCBC(
		WithCluster("littlefe"),
		WithScheduler("torque"),
		WithRolls("ganglia", "hpc"),
		WithProgress(func(ev Event) { events = append(events, ev) }),
	).Deploy(context.Background())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if d.Scheduler() != "torque" {
		t.Errorf("scheduler = %q, want torque", d.Scheduler())
	}
	if d.PackagesInstalled() == 0 {
		t.Error("no packages installed")
	}
	if d.InstallDuration() <= 0 {
		t.Errorf("install duration = %v, want > 0", d.InstallDuration())
	}
	if len(d.InstallLog()) == 0 {
		t.Error("install log empty")
	}

	// The progress stream walks the build: distribution, frontend, one
	// event per compute node, subsystems.
	stages := map[string]int{}
	for _, ev := range events {
		stages[ev.Stage]++
	}
	if stages["distribution"] != 1 || stages["frontend"] != 1 || stages["subsystems"] != 1 {
		t.Errorf("stage counts = %v, want one each of distribution/frontend/subsystems", stages)
	}
	if want := len(d.Hardware().Computes); stages["compute"] != want {
		t.Errorf("compute events = %d, want %d", stages["compute"], want)
	}

	c, err := d.Compat()
	if err != nil {
		t.Fatalf("Compat: %v", err)
	}
	if c.Total == 0 || c.Passed == 0 {
		t.Errorf("compat = %+v, want non-zero checks", c)
	}

	// The command facade answers the scheduler's native vocabulary.
	out, err := d.Exec("qsub -N smoke -l nodes=2:ppn=2,walltime=00:10:00 -u alice job.sh")
	if err != nil {
		t.Fatalf("Exec qsub: %v", err)
	}
	if out == "" {
		t.Error("qsub output empty")
	}
}

func TestWithRollsEmptyMeansBareDistribution(t *testing.T) {
	d, err := NewXCBC(WithCluster("littlefe"), WithRolls()).Deploy(context.Background())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	rolls := d.Installer().DB.Distribution().RollNames()
	if len(rolls) != 2 {
		t.Fatalf("rolls = %v, want only base + xsede", rolls)
	}
}

func TestXNITDeployIdempotent(t *testing.T) {
	d := mustVendor(t)
	for i := 0; i < 2; i++ {
		if _, err := NewXNIT(d, WithProfiles("compilers")).Deploy(context.Background()); err != nil {
			t.Fatalf("Deploy %d: %v", i, err)
		}
	}
	n := 0
	for _, c := range d.Repos().Configs() {
		if c.Repo.ID == XNITRepoID {
			n++
		}
	}
	if n != 1 {
		t.Errorf("xsede configured %d times after re-adoption, want 1", n)
	}
}

func TestXCBCDeployCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewXCBC(WithCluster("littlefe")).Deploy(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Deploy with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestXCBCDeployDiskless(t *testing.T) {
	_, err := NewXCBC(WithCluster("littlefe-original")).Deploy(context.Background())
	if !errors.Is(err, ErrDiskless) {
		t.Fatalf("diskless deploy error = %v, want ErrDiskless", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		b    Builder
		want error
	}{
		{"unknown cluster", NewXCBC(WithCluster("deep-thought")), ErrUnknownCluster},
		{"unknown scheduler", NewXCBC(WithScheduler("loadleveler")), ErrUnknownScheduler},
		{"unknown roll", NewXCBC(WithRolls("cuda")), ErrUnknownRoll},
		{"unknown power policy", NewXCBC(WithPowerPolicy("solar")), ErrUnknownPowerPolicy},
		{"bad node count", NewXCBC(WithNodeCount(-2)), ErrBadNodeCount},
		{"nil deployment", NewXNIT(nil), ErrNilDeployment},
		{"unknown profile", NewXNIT(mustVendor(t), WithProfiles("quantum")), ErrUnknownProfile},
	}
	for _, tc := range cases {
		if _, err := tc.b.Deploy(ctx); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func mustVendor(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewVendor(WithCluster("limulus")).Deploy(context.Background())
	if err != nil {
		t.Fatalf("NewVendor: %v", err)
	}
	return d
}

func TestWithNodeCountResize(t *testing.T) {
	for _, n := range []int{2, 9} {
		d, err := NewXCBC(WithCluster("littlefe"), WithNodeCount(n)).Deploy(context.Background())
		if err != nil {
			t.Fatalf("Deploy with %d nodes: %v", n, err)
		}
		if got := len(d.Hardware().Computes); got != n {
			t.Errorf("compute count = %d, want %d", got, n)
		}
	}
}

func TestXNITAdoption(t *testing.T) {
	vendor := mustVendor(t)

	// Installs without a configured repository must fail loudly.
	if _, err := vendor.InstallPackages("gcc"); !errors.Is(err, ErrNoRepos) {
		t.Fatalf("install before XNIT = %v, want ErrNoRepos", err)
	}
	before, err := vendor.Compat()
	if err != nil {
		t.Fatalf("Compat before: %v", err)
	}

	var events []Event
	d, err := NewXNIT(vendor,
		WithProfiles("compilers", "python"),
		WithScheduler("torque"),
		WithPackages("R"),
		WithProgress(func(ev Event) { events = append(events, ev) }),
	).Deploy(context.Background())
	if err != nil {
		t.Fatalf("XNIT Deploy: %v", err)
	}
	if d != vendor {
		t.Error("XNIT must convert the deployment in place")
	}
	if d.Scheduler() != "torque" {
		t.Errorf("scheduler = %q, want torque", d.Scheduler())
	}
	if d.Repo(XNITRepoID) == nil {
		t.Errorf("repo %q not configured", XNITRepoID)
	}
	after, err := d.Compat()
	if err != nil {
		t.Fatalf("Compat after: %v", err)
	}
	if after.Score <= before.Score {
		t.Errorf("compat score %f -> %f, want improvement", before.Score, after.Score)
	}
	stages := map[string]int{}
	for _, ev := range events {
		stages[ev.Stage]++
	}
	if stages["repo"] != 1 || stages["profile"] != 2 || stages["scheduler"] != 1 || stages["packages"] != 1 {
		t.Errorf("stage counts = %v", stages)
	}

	// Unresolvable requests surface the sentinel.
	if _, err := d.InstallPackages("libreoffice"); !errors.Is(err, ErrUnresolvable) {
		t.Errorf("install of unknown package = %v, want ErrUnresolvable", err)
	}
}

func TestChangeSchedulerGuards(t *testing.T) {
	d, err := NewXCBC(WithCluster("littlefe")).Deploy(context.Background())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if err := d.ChangeScheduler("cron"); !errors.Is(err, ErrUnknownScheduler) {
		t.Errorf("unknown scheduler = %v, want ErrUnknownScheduler", err)
	}
	if _, err := d.Exec("qsub -N busy -l nodes=1:ppn=1,walltime=01:00:00 -u bob busy.sh"); err != nil {
		t.Fatalf("qsub: %v", err)
	}
	if err := d.ChangeScheduler("slurm"); !errors.Is(err, ErrJobsRunning) {
		t.Errorf("change with running jobs = %v, want ErrJobsRunning", err)
	}
	d.Engine().Run() // drain
	if err := d.ChangeScheduler("slurm"); err != nil {
		t.Fatalf("change after drain: %v", err)
	}
	if d.Scheduler() != "slurm" {
		t.Errorf("scheduler = %q, want slurm", d.Scheduler())
	}
}

func TestUpdateCheck(t *testing.T) {
	d, err := NewXNIT(mustVendor(t), WithProfiles("compilers")).Deploy(context.Background())
	if err != nil {
		t.Fatalf("XNIT Deploy: %v", err)
	}
	chk := d.UpdateCheck(UpdateNotify, time.Date(2015, 4, 1, 6, 0, 0, 0, time.UTC))
	if len(chk.ByNode) != d.Hardware().NodeCount() {
		t.Errorf("checked %d nodes, want %d", len(chk.ByNode), d.Hardware().NodeCount())
	}
	for node, nu := range chk.ByNode {
		if nu.Summary == "" {
			t.Errorf("node %s: empty summary", node)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Clusters()) == 0 || len(Schedulers()) == 0 || len(Rolls()) == 0 || len(Profiles()) == 0 {
		t.Fatal("registries must not be empty")
	}
	if RollDescription("ganglia") == "" {
		t.Error("missing roll description")
	}
	if _, err := BuildDistribution("torque", "ganglia"); err != nil {
		t.Errorf("BuildDistribution: %v", err)
	}
	if _, err := BuildDistribution("torque", "nosuchroll"); !errors.Is(err, ErrUnknownRoll) {
		t.Errorf("BuildDistribution bad roll = %v, want ErrUnknownRoll", err)
	}
	if _, err := BuildDistribution("nfs", "ganglia"); !errors.Is(err, ErrUnknownScheduler) {
		t.Errorf("BuildDistribution bad scheduler = %v, want ErrUnknownScheduler", err)
	}
	r, err := NewXNITRepository()
	if err != nil {
		t.Fatalf("NewXNITRepository: %v", err)
	}
	if r.Len() == 0 {
		t.Error("XNIT repository empty")
	}
}
