package xcbc

import (
	"context"
	"errors"
	"fmt"

	"xcbc/internal/fleet"
	"xcbc/internal/orchestrator"
)

// Fleet-scale deployment: many clusters stamped from one recipe, built
// concurrently on a bounded worker pool and operated member-by-member
// through the same Cluster resource single deployments use. This is the
// surface the scenario engine (RunScenario) and the /api/v1/fleets control
// plane drive.

// ErrBadFleetSpec reports an invalid fleet specification.
var ErrBadFleetSpec = errors.New("xcbc: bad fleet spec")

// FleetSpec sizes a fleet.
type FleetSpec struct {
	// Name labels the fleet; member IDs derive from it. Default "fleet".
	Name string
	// Members is the number of clusters; must be >= 1.
	Members int
	// Cluster is the catalog machine every member clones (see Clusters()).
	// Default "littlefe".
	Cluster string
	// Nodes overrides each member's compute-node count (0 = as cataloged).
	Nodes int
	// Scheduler is the batch system each member runs. Default "torque".
	Scheduler string
	// Parallelism is the per-member kickstart wave width.
	Parallelism int
	// Retries is the per-node install retry budget before quarantine.
	Retries int
	// Workers bounds concurrent member builds fleet-wide (0 = automatic).
	Workers int
}

func (s FleetSpec) internal() fleet.Spec {
	return fleet.Spec{
		Name:        s.Name,
		Members:     s.Members,
		Cluster:     s.Cluster,
		Nodes:       s.Nodes,
		Scheduler:   s.Scheduler,
		Parallelism: s.Parallelism,
		Retries:     s.Retries,
		Workers:     s.Workers,
	}
}

// FleetStatus is an aggregate lifecycle snapshot.
type FleetStatus struct {
	Members     int `json:"members"`
	Pending     int `json:"pending"`
	Building    int `json:"building"`
	Ready       int `json:"ready"`
	Failed      int `json:"failed"`
	Cancelled   int `json:"cancelled"`
	Quarantined int `json:"quarantined"` // quarantined compute nodes across ready members
}

// Settled reports whether every member reached a terminal state.
func (s FleetStatus) Settled() bool {
	return s.Members > 0 && s.Pending == 0 && s.Building == 0
}

// Fleet manages N member clusters as one unit. All methods are safe for
// concurrent use.
type Fleet struct {
	fl *fleet.Fleet
}

// NewFleet assembles a fleet; member hardware is stamped out immediately,
// builds start at Provision.
func NewFleet(spec FleetSpec) (*Fleet, error) {
	fl, err := fleet.New(spec.internal())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFleetSpec, err)
	}
	return &Fleet{fl: fl}, nil
}

// Provision starts every member's build on the fleet's worker pool and
// returns immediately; use Wait to block for the whole fleet.
func (f *Fleet) Provision(ctx context.Context) error {
	if err := f.fl.Provision(ctx); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOption, err)
	}
	return nil
}

// Deploy is the synchronous convenience wrapper: Provision plus Wait.
func (f *Fleet) Deploy(ctx context.Context) error {
	if err := f.Provision(ctx); err != nil {
		return err
	}
	return f.Wait(ctx)
}

// Wait blocks until every member build settles or ctx expires; it returns
// nil when all members are ready, otherwise the first member failure.
func (f *Fleet) Wait(ctx context.Context) error { return f.fl.Wait(ctx) }

// Cancel asks every in-flight member build to stop.
func (f *Fleet) Cancel() { f.fl.Cancel() }

// Len returns the member count.
func (f *Fleet) Len() int { return f.fl.Len() }

// Provisioned reports whether Provision has been called (builds may
// still be in flight).
func (f *Fleet) Provisioned() bool { return f.fl.Provisioned() }

// Status counts members by lifecycle state.
func (f *Fleet) Status() FleetStatus {
	st := f.fl.Status()
	return FleetStatus{
		Members: st.Members, Pending: st.Pending, Building: st.Building,
		Ready: st.Ready, Failed: st.Failed, Cancelled: st.Cancelled,
		Quarantined: st.Quarantined,
	}
}

// Members returns the fleet's members in index order.
func (f *Fleet) Members() []*FleetMember {
	ms := f.fl.Members()
	out := make([]*FleetMember, len(ms))
	for i, m := range ms {
		out[i] = &FleetMember{m: m}
	}
	return out
}

// Member returns one member by index.
func (f *Fleet) Member(i int) (*FleetMember, bool) {
	m, ok := f.fl.Member(i)
	if !ok {
		return nil, false
	}
	return &FleetMember{m: m}, true
}

// SetJournalSink registers fn to receive every entry of the fleet's
// aggregate lifecycle journal (one entry as each member's build settles)
// as it is appended — the seam a durable store taps to persist fleet
// history past the journal ring's eviction. fn runs under the journal's
// lock and must be fast; nil detaches.
func (f *Fleet) SetJournalSink(fn func(Event)) {
	if fn == nil {
		f.fl.Journal().SetSink(nil)
		return
	}
	f.fl.Journal().SetSink(func(ev orchestrator.Event) {
		fn(Event{Seq: ev.Seq, Stage: ev.Stage, Node: ev.Node,
			Message: ev.Message, Packages: ev.Packages, Elapsed: ev.Elapsed})
	})
}

// RunScenario drives this fleet through a scenario script (the fleet's
// size must match the scenario's member count). See RunScenario for the
// standalone form.
func (f *Fleet) RunScenario(ctx context.Context, sc *Scenario) (*ScenarioResult, error) {
	return runScenarioOn(ctx, f.fl, sc)
}

// RunScenarioObserved is RunScenario with a progress observer: obs is
// called with every trace event as the run emits it, in trace order, on
// the run's goroutine (nil obs behaves like RunScenario). It is the seam
// a durable store uses to journal run progress as it happens.
func (f *Fleet) RunScenarioObserved(ctx context.Context, sc *Scenario, obs func(TraceEvent)) (*ScenarioResult, error) {
	return runScenarioObserved(ctx, f.fl, sc, obs)
}

// FleetMember is one cluster of a fleet.
type FleetMember struct {
	m *fleet.Member
}

// ID returns the member's fleet-unique identifier (e.g. "fleet-007").
func (fm *FleetMember) ID() string { return fm.m.ID }

// Index returns the member's position in the fleet.
func (fm *FleetMember) Index() int { return fm.m.Index }

// Status returns the member's build lifecycle state.
func (fm *FleetMember) Status() DeployState { return stateOf(fm.m.State()) }

// Err returns the member's terminal build error, nil while in flight and
// on success.
func (fm *FleetMember) Err() error { return fm.m.Err() }

// Cancel asks the member's build to stop.
func (fm *FleetMember) Cancel() { fm.m.Cancel() }

// Events returns the member's build journal from cursor plus the next
// cursor, in the same shape as Handle.Events.
func (fm *FleetMember) Events(cursor int) ([]Event, int) {
	evs, next := fm.m.Events(cursor)
	out := make([]Event, len(evs))
	for i, ev := range evs {
		out[i] = Event{Seq: ev.Seq, Stage: ev.Stage, Node: ev.Node,
			Message: ev.Message, Packages: ev.Packages, Elapsed: ev.Elapsed}
	}
	return out, next
}

// Cluster returns the member's live day-2 resource once its build is
// ready, failing with ErrNotReady before that. All Cluster values for one
// member share the fleet's per-member serialization point, so concurrent
// use stays safe.
func (fm *FleetMember) Cluster() (*Cluster, error) {
	ops, err := fm.m.Operations()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotReady, err)
	}
	cd, _ := fm.m.Deployment()
	dep := &Deployment{core: cd}
	// Share the member's adapter so an escape-hatch Open() on the wrapped
	// deployment cannot mint a second, non-serializing one.
	dep.opsOnce.Do(func() { dep.ops = ops })
	return &Cluster{d: dep, ops: ops}, nil
}
