package main

import "xcbc/internal/analysis"

// Analyzers is the detlint suite: exactly the five passes that prove the
// determinism and durability invariants. The meta-test pins this list —
// adding a sixth analyzer is a deliberate act, not a drive-by.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analysis.Detclock,
		analysis.Detrand,
		analysis.Maporder,
		analysis.Errdrop,
		analysis.Lockcopy,
	}
}
