// Detlint is the multichecker for this repository's determinism and
// durability invariants (see DESIGN.md, "Static analysis: the determinism
// contract"). It runs the five internal/analysis passes — detclock,
// detrand, maporder, errdrop, lockcopy — in two modes:
//
// Standalone, over package patterns (exit 0 clean, 1 findings, 2 unusable):
//
//	go run ./cmd/detlint ./...
//
// As a `go vet` tool, speaking the vet driver protocol (-V=full, -flags,
// and JSON vet.cfg units), so the suite composes with the build cache:
//
//	go build -o detlint ./cmd/detlint
//	go vet -vettool=./detlint ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"xcbc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var patterns []string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion()
		case arg == "-flags" || arg == "--flags":
			// The vet driver interrogates tools for their flags; the
			// suite is deliberately knob-free.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(arg, ".cfg"):
			return runVetUnit(arg)
		case strings.HasPrefix(arg, "-"):
			fmt.Fprintf(os.Stderr, "detlint: unknown flag %s\n", arg)
			return 2
		default:
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return runStandalone(patterns)
}

// printVersion implements -V=full. The version string doubles as the vet
// driver's cache key, so it embeds a content hash of the executable:
// rebuild detlint and every cached vet verdict is invalidated.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("detlint version %s\n", id)
	return 0
}

// runStandalone loads the patterns through `go list -export` and analyzes
// every matched package.
func runStandalone(patterns []string) int {
	fset, pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", pkg.ImportPath, terr)
			}
			return 2
		}
		findings += analyze(fset, pkg.ImportPath, pkg, os.Stderr)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// analyze runs the whole suite over one loaded package, printing sorted
// diagnostics, and returns the finding count.
func analyze(fset *token.FileSet, importPath string, pkg *analysis.Package, w *os.File) int {
	canonical := analysis.CanonicalImportPath(importPath)
	type finding struct {
		d    analysis.Diagnostic
		name string
	}
	var findings []finding
	for _, a := range Analyzers() {
		a := a
		pass := &analysis.Pass{
			Analyzer:       a,
			Fset:           fset,
			Files:          pkg.Files,
			Pkg:            pkg.Types,
			Info:           pkg.Info,
			ImportPath:     canonical,
			Deterministic:  analysis.IsDeterministic(canonical),
			OrderSensitive: analysis.IsOrderSensitive(canonical),
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, finding{d, a.Name})
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(w, "detlint: %s: %s: %v\n", a.Name, canonical, err)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].d.Pos), fset.Position(findings[j].d.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	for _, f := range findings {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(f.d.Pos), f.name, f.d.Message)
	}
	return len(findings)
}

// vetConfig mirrors the JSON unit description cmd/go writes for vet tools
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit described by a vet.cfg file.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite declares no cross-package facts, so dependency-only units
	// need no analysis — just the output file the driver expects.
	if cfg.VetxOnly {
		return writeVetx(cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	tpkg, info, terrs := analysis.TypeCheck(fset, cfg.ImportPath, files, imp)
	if len(terrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput)
		}
		for _, terr := range terrs {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", terr)
		}
		return 1
	}
	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings := analyze(fset, cfg.ImportPath, pkg, os.Stderr)
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	if findings > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the (empty) facts file the vet driver expects as this
// unit's output.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte("detlint: no facts\n"), 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 1
	}
	return 0
}
