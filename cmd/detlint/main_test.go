package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExactlyFiveAnalyzers pins the suite: the determinism contract names
// five invariants, and the registry must carry exactly those five passes.
// Growing the suite is fine — do it here, in DESIGN.md, and in the
// fixtures, as one deliberate change.
func TestExactlyFiveAnalyzers(t *testing.T) {
	want := []string{"detclock", "detrand", "maporder", "errdrop", "lockcopy"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registry has %d analyzers, want exactly %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// buildDetlint compiles the detlint binary once per test run.
func buildDetlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "detlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolProtocol drives the real `go vet -vettool=` integration over
// the vet fixture module: a clean package passes, a violating package
// fails with the lockcopy diagnostic on stderr. This is the end-to-end
// proof that detlint speaks the vet driver protocol (-V=full, -flags,
// vet.cfg units).
func TestVettoolProtocol(t *testing.T) {
	bin := buildDetlint(t)
	fixtureDir, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "vet"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(fixtureDir, "go.mod")); err != nil {
		t.Fatalf("vet fixture module missing: %v", err)
	}

	vet := func(pattern string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pattern)
		cmd.Dir = fixtureDir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}

	if out, err := vet("./clean"); err != nil {
		t.Errorf("go vet over clean fixture failed: %v\n%s", err, out)
	}
	out, err := vet("./bad")
	if err == nil {
		t.Fatalf("go vet over violating fixture succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "value receiver") || !strings.Contains(out, "lockcopy") {
		t.Errorf("vet output missing the lockcopy diagnostic:\n%s", out)
	}
}

// TestStandaloneMode drives the pattern-based entry point the CI lint
// script uses, including the exit-code contract: 0 clean, 1 findings.
func TestStandaloneMode(t *testing.T) {
	bin := buildDetlint(t)
	fixtureDir, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "vet"))
	if err != nil {
		t.Fatal(err)
	}

	run := func(pattern string) (string, int) {
		cmd := exec.Command(bin, pattern)
		cmd.Dir = fixtureDir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running detlint: %v", err)
		}
		return out.String(), code
	}

	if out, code := run("./clean"); code != 0 {
		t.Errorf("detlint ./clean exited %d, want 0:\n%s", code, out)
	}
	out, code := run("./bad")
	if code != 1 {
		t.Errorf("detlint ./bad exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "[lockcopy]") {
		t.Errorf("standalone output missing the [lockcopy] diagnostic:\n%s", out)
	}
}

// TestVersionFlag checks the -V=full contract: at least three fields with
// "version" second, so cmd/go accepts the line as a tool ID.
func TestVersionFlag(t *testing.T) {
	bin := buildDetlint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("detlint -V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[0] != "detlint" || f[1] != "version" {
		t.Errorf("-V=full printed %q; want \"detlint version <id>\"", strings.TrimSpace(string(out)))
	}
	if f[2] == "devel" || f[2] == "unknown" {
		t.Errorf("-V=full version %q is not a content hash; vet caching would be unsound", f[2])
	}
}
