// Command xnit demonstrates the XSEDE National Integration Toolkit workflow
// on an existing cluster: configure the XSEDE Yum repository, install
// package profiles, optionally change the scheduler, run an update check,
// and report the compatibility score before and after.
//
// Usage:
//
//	xnit -cluster limulus -profiles compilers,bio -scheduler torque
//	xnit -list-profiles
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"xcbc/internal/cluster"
	"xcbc/internal/core"
	"xcbc/internal/depsolve"
	"xcbc/internal/provision"
	"xcbc/internal/rpm"
	"xcbc/internal/sim"
)

func main() {
	clusterName := flag.String("cluster", "limulus", "existing cluster to convert: limulus, littlefe, montana, pbarc")
	profilesFlag := flag.String("profiles", "compilers,python,statistics", "comma-separated XNIT profiles to install")
	scheduler := flag.String("scheduler", "torque", "scheduler to install (empty = keep none)")
	listProfiles := flag.Bool("list-profiles", false, "list available profiles and exit")
	flag.Parse()

	if *listProfiles {
		names := core.Profiles()
		sort.Strings(names)
		for _, p := range names {
			fmt.Println(p)
		}
		return
	}

	builders := map[string]func() *cluster.Cluster{
		"limulus":  cluster.NewLimulusHPC200,
		"littlefe": cluster.NewLittleFe,
		"montana":  cluster.NewMontanaState,
		"pbarc":    cluster.NewPBARC,
	}
	build, ok := builders[*clusterName]
	if !ok {
		fmt.Fprintf(os.Stderr, "xnit: unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	c := build()
	eng := sim.NewEngine()

	// The cluster arrives running its vendor stack.
	base := []*rpm.Package{
		rpm.NewPackage("kernel", "2.6.32-431.el6.sl", rpm.ArchX86_64).Build(),
		rpm.NewPackage("openssh-server", "5.3p1-94.el6", rpm.ArchX86_64).Build(),
		rpm.NewPackage("environment-modules", "3.2.10-2.el6", rpm.ArchX86_64).Build(),
	}
	if err := provision.VendorProvision(eng, c, "Scientific Linux 6.5", base); err != nil {
		fmt.Fprintln(os.Stderr, "xnit:", err)
		os.Exit(1)
	}
	d, err := core.NewVendorDeployment(eng, c, "", core.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xnit:", err)
		os.Exit(1)
	}
	before, _ := d.CompatReport()
	fmt.Printf("before XNIT: %d/%d compatibility checks pass (%.0f%%)\n",
		before.Passed(), before.Total(), 100*before.Score())

	xnitRepo, err := core.NewXNITRepository()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xnit:", err)
		os.Exit(1)
	}
	core.ConfigureXNIT(d, xnitRepo)
	fmt.Printf("configured %s repository (priority %d, %d packages)\n",
		core.XNITRepoID, core.XNITPriority, xnitRepo.Len())

	installed := 0
	for _, p := range strings.Split(*profilesFlag, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := d.InstallProfile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xnit:", err)
			os.Exit(1)
		}
		fmt.Printf("installed profile %-12s (%d package installs cluster-wide)\n", p, n)
		installed += n
	}
	if *scheduler != "" {
		if err := d.ChangeScheduler(*scheduler); err != nil {
			fmt.Fprintln(os.Stderr, "xnit:", err)
			os.Exit(1)
		}
		fmt.Printf("scheduler set to %s\n", *scheduler)
	}
	// Fill in anything the compatibility reference still wants.
	if _, err := d.InstallEverywhere("gcc", "openmpi", "mpich2", "fftw", "hdf5", "netcdf",
		"python", "numpy", "R", "gromacs", "lammps", "ncbi-blast", "papi", "boost",
		"globus-connect-server"); err != nil {
		fmt.Fprintln(os.Stderr, "xnit:", err)
		os.Exit(1)
	}

	after, _ := d.CompatReport()
	fmt.Printf("after XNIT:  %d/%d compatibility checks pass (%.0f%%)\n",
		after.Passed(), after.Total(), 100*after.Score())
	fmt.Printf("total package installs: %d; simulated time consumed: %v\n",
		installed, eng.Now().Duration())

	// The update-check workflow the paper recommends (notify, not auto).
	notes := d.RunUpdateCheckEverywhere(depsolve.PolicyNotify, time.Now())
	fmt.Printf("update check (policy notify) across %d nodes: ", len(notes))
	pending := 0
	for _, n := range notes {
		pending += len(n.Pending)
	}
	fmt.Printf("%d updates pending review\n", pending)
}
