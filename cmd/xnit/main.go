// Command xnit demonstrates the XSEDE National Integration Toolkit workflow
// on an existing cluster: configure the XSEDE Yum repository, install
// package profiles, optionally change the scheduler, run an update check,
// and report the compatibility score before and after.
//
// Usage:
//
//	xnit -cluster limulus -profiles compilers,bio -scheduler torque
//	xnit -list-profiles
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xcbc/pkg/xcbc"
)

func main() {
	clusterName := flag.String("cluster", "limulus", "existing cluster to convert: limulus, littlefe, montana, pbarc")
	profilesFlag := flag.String("profiles", "compilers,python,statistics", "comma-separated XNIT profiles to install")
	scheduler := flag.String("scheduler", "torque", "scheduler to install (empty = keep none)")
	listProfiles := flag.Bool("list-profiles", false, "list available profiles and exit")
	flag.Parse()

	if *listProfiles {
		for _, p := range xcbc.Profiles() {
			fmt.Println(p)
		}
		return
	}

	ctx := context.Background()

	// The cluster arrives running its vendor stack.
	d, err := xcbc.NewVendor(xcbc.WithCluster(*clusterName)).Deploy(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xnit:", err)
		os.Exit(1)
	}
	before, _ := d.Compat()
	fmt.Printf("before XNIT: %d/%d compatibility checks pass (%.0f%%)\n",
		before.Passed, before.Total, 100*before.Score)

	var profiles []string
	for _, p := range strings.Split(*profilesFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			profiles = append(profiles, p)
		}
	}
	opts := []xcbc.Option{
		xcbc.WithProfiles(profiles...),
		// Fill in anything the compatibility reference still wants.
		xcbc.WithPackages("gcc", "openmpi", "mpich2", "fftw", "hdf5", "netcdf",
			"python", "numpy", "R", "gromacs", "lammps", "ncbi-blast", "papi", "boost",
			"globus-connect-server"),
		xcbc.WithProgress(func(ev xcbc.Event) {
			switch ev.Stage {
			case "repo":
				fmt.Printf("configured %s repository (priority %d, %d packages)\n",
					xcbc.XNITRepoID, xcbc.XNITPriority, ev.Packages)
			case "profile", "scheduler":
				fmt.Printf("%s\n", ev.Message)
			}
		}),
	}
	if *scheduler != "" {
		opts = append(opts, xcbc.WithScheduler(*scheduler))
	}
	if _, err := xcbc.NewXNIT(d, opts...).Deploy(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "xnit:", err)
		os.Exit(1)
	}

	after, _ := d.Compat()
	fmt.Printf("after XNIT:  %d/%d compatibility checks pass (%.0f%%)\n",
		after.Passed, after.Total, 100*after.Score)
	fmt.Printf("simulated time consumed: %v\n", d.Engine().Now().Duration())

	// The update-check workflow the paper recommends (notify, not auto).
	chk := d.UpdateCheck(xcbc.UpdateNotify, time.Now())
	fmt.Printf("update check (policy notify) across %d nodes: %d updates pending review\n",
		len(chk.ByNode), chk.PendingTotal())
}
