// Command tables regenerates every table and figure from the paper's
// evaluation section. With no flags it prints everything; -table N or
// -figure N selects one.
package main

import (
	"flag"
	"fmt"
	"os"

	"xcbc/internal/cluster"
	"xcbc/internal/hpl"
	"xcbc/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print only table N (1-5)")
	figure := flag.Int("figure", 0, "print only the substitute for figure N (1-3)")
	projection := flag.Bool("projection", false, "print the 2020 half-PFLOPS adoption projection (extension)")
	scaling := flag.Bool("scaling", false, "print the LittleFe-class HPL scaling curve (extension)")
	flag.Parse()

	switch {
	case *projection:
		fmt.Print(report.RenderProjection())
		return
	case *scaling:
		points := hpl.ScalingCurve(cluster.CeleronG1840, 8, 16, cluster.GigabitEthernet, hpl.ModelParams{})
		fmt.Print(hpl.RenderScalingCurve(points, "LittleFe-class weak scaling over GigE (extension figure)"))
		return
	case *table != 0 && *figure != 0:
		fmt.Fprintln(os.Stderr, "tables: use -table or -figure, not both")
		os.Exit(2)
	case *table != 0:
		var out string
		switch *table {
		case 1:
			out = report.Table1()
		case 2:
			out = report.Table2()
		case 3:
			out = report.Table3()
		case 4:
			out = report.Table4()
		case 5:
			out = report.Table5()
		default:
			fmt.Fprintf(os.Stderr, "tables: the paper has tables 1-5, not %d\n", *table)
			os.Exit(2)
		}
		fmt.Print(out)
	case *figure != 0:
		fig, err := report.Figure(*figure)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(2)
		}
		fmt.Print(fig)
	default:
		fmt.Print(report.All())
	}
}
