// Command repo-server is the toolkit's HTTP control plane: the versioned
// JSON REST API (/api/v1/...) for repositories, dependency resolution, and
// deployments, plus the legacy Yum routes the XSEDE Campus Bridging team
// served at cb-repo.iu.xsede.org (README at /, metadata at
// /{repo}/repodata/repomd.json, package records under /{repo}/packages/).
//
// The server logs every request, carries read/write timeouts, and shuts
// down gracefully on SIGINT/SIGTERM.
//
// With -data-dir the control plane becomes durable: every resource
// mutation is journalled to a write-ahead log under the directory and a
// restarted server recovers its deployments, fleets, and scenario runs
// before listening (see GET /api/v1/store for live durability status).
//
// With -tenants the control plane becomes multi-tenant: the flag names a
// JSON file holding an array of tenant declarations —
//
//	[{"name": "physics", "key": "s3cret",
//	  "quotas": {"max_deployments": 8, "max_fleets": 4, "max_campaigns": 2},
//	  "rate_limit": 50, "burst": 100}]
//
// — and every /api/v1 request (except discovery and the health probe)
// must then carry a tenant's key as "Authorization: Bearer <key>" or
// "X-API-Key". Each tenant sees only its own resources, is rate-limited
// to its token bucket (429 + Retry-After), and is capped at its quotas
// (403). With -data-dir too, each tenant journals to its own WAL under
// <data-dir>/tenants/<name>, so restarts recover every shard.
//
// Usage:
//
//	repo-server -addr :8080
//	repo-server -addr :8080 -data-dir /var/lib/repo-server
//	curl localhost:8080/api/v1                 # route discovery
//	curl localhost:8080/api/v1/repos
//	curl localhost:8080/api/v1/repos/xsede/packages?name=gcc
//	curl -d '{"install":["gromacs"]}' localhost:8080/api/v1/depsolve
//	curl -d '{"cluster":"littlefe","scheduler":"torque"}' localhost:8080/api/v1/deployments
//	curl localhost:8080/api/v1/clusters/d1     # day-2 view once ready
//	curl -d '{"cores":4,"walltime":"1h"}' localhost:8080/api/v1/clusters/d1/jobs
//	curl localhost:8080/                       # readme.xsederepo
//	curl localhost:8080/xsede/repodata/repomd.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xcbc/internal/repo"
	"xcbc/pkg/xcbc"
	"xcbc/pkg/xcbc/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable request logging")
	dataDir := flag.String("data-dir", "", "durable state directory (empty = in-memory only)")
	snapEvery := flag.Int("snapshot-every", 0, "WAL records between snapshots (0 = default)")
	resume := flag.Bool("resume", false, "resume deployments interrupted mid-build instead of failing them")
	tenantsPath := flag.String("tenants", "", "JSON tenant config file (empty = open mode, no auth)")
	flag.Parse()

	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "repo-server: ", log.LstdFlags)
	}
	cfg := api.Config{Repos: []*repo.Repository{xnit}, Logger: logger,
		DataDir: *dataDir, SnapshotEvery: *snapEvery, ResumeInterrupted: *resume}
	if *tenantsPath != "" {
		raw, err := os.ReadFile(*tenantsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repo-server:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &cfg.Tenants); err != nil {
			fmt.Fprintf(os.Stderr, "repo-server: parsing %s: %v\n", *tenantsPath, err)
			os.Exit(1)
		}
	}
	srv, rec, err := api.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
	defer srv.Close()
	if rec != nil {
		fmt.Printf("recovered %s in %v: %d deployments (%d rebuilt, %d archived, %d interrupted, %d resumed, %d ops replayed), %d fleets, %d runs (%d replayed, %d diverged), %d campaigns (%d interrupted)\n",
			rec.DataDir, rec.Elapsed.Round(time.Millisecond),
			rec.Deployments, rec.Rebuilt, rec.Archived, rec.Interrupted, rec.Resumed, rec.OpsReplayed,
			rec.Fleets, rec.Runs, rec.Replayed, rec.ReplayMismatches,
			rec.Campaigns, rec.CampaignsInterrupted)
		if rec.Repaired {
			fmt.Printf("repaired torn WAL tail (%d bytes dropped)\n", rec.DroppedBytes)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("serving XSEDE repository (%d packages) and API %s on %s\n",
		xnit.Len(), api.Version, *addr)
	fmt.Println("routes: /api/v1/{healthz,repos,depsolve,deployments,clusters}  /  /xsede/repodata/repomd.json")
	fmt.Println("discover the full route table at GET /api/" + api.Version)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
	fmt.Println("repo-server: shut down cleanly")
}
