// Command repo-server is the toolkit's HTTP control plane: the versioned
// JSON REST API (/api/v1/...) for repositories, dependency resolution, and
// deployments, plus the legacy Yum routes the XSEDE Campus Bridging team
// served at cb-repo.iu.xsede.org (README at /, metadata at
// /{repo}/repodata/repomd.json, package records under /{repo}/packages/).
//
// The server logs every request, carries read/write timeouts, and shuts
// down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	repo-server -addr :8080
//	curl localhost:8080/api/v1                 # route discovery
//	curl localhost:8080/api/v1/repos
//	curl localhost:8080/api/v1/repos/xsede/packages?name=gcc
//	curl -d '{"install":["gromacs"]}' localhost:8080/api/v1/depsolve
//	curl -d '{"cluster":"littlefe","scheduler":"torque"}' localhost:8080/api/v1/deployments
//	curl localhost:8080/api/v1/clusters/d1     # day-2 view once ready
//	curl -d '{"cores":4,"walltime":"1h"}' localhost:8080/api/v1/clusters/d1/jobs
//	curl localhost:8080/                       # readme.xsederepo
//	curl localhost:8080/xsede/repodata/repomd.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"xcbc/internal/repo"
	"xcbc/pkg/xcbc"
	"xcbc/pkg/xcbc/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable request logging")
	flag.Parse()

	xnit, err := xcbc.NewXNITRepository()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "repo-server: ", log.LstdFlags)
	}
	srv := api.New(api.Config{Repos: []*repo.Repository{xnit}, Logger: logger})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("serving XSEDE repository (%d packages) and API %s on %s\n",
		xnit.Len(), api.Version, *addr)
	fmt.Println("routes: /api/v1/{healthz,repos,depsolve,deployments,clusters}  /  /xsede/repodata/repomd.json")
	fmt.Println("discover the full route table at GET /api/" + api.Version)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
	fmt.Println("repo-server: shut down cleanly")
}
