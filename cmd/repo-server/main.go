// Command repo-server serves the XNIT repository over HTTP the way the
// XSEDE Campus Bridging team served cb-repo.iu.xsede.org: a README with the
// yum configuration stanza at /, metadata at /{repo}/repodata/repomd.json,
// and package records under /{repo}/packages/.
//
// Usage:
//
//	repo-server -addr :8080
//	curl localhost:8080/                       # readme.xsederepo
//	curl localhost:8080/xsede/repodata/repomd.json
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"xcbc/internal/core"
	"xcbc/internal/repo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	xnit, err := core.NewXNITRepository()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
	srv := repo.NewServer(nil, xnit)
	fmt.Printf("serving XSEDE Yum repository (%d packages) on %s\n", xnit.Len(), *addr)
	fmt.Println("routes: /  /xsede/repodata/repomd.json  /xsede/packages/{nevra}.rpm")
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "repo-server:", err)
		os.Exit(1)
	}
}
