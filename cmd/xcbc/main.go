// Command xcbc performs the "all at once, from scratch" XSEDE-compatible
// basic cluster build on a simulated machine: it assembles the Rocks
// distribution with the XSEDE roll, installs the frontend, kickstarts every
// compute node, and reports the resulting stack and compatibility score.
//
// Usage:
//
//	xcbc -cluster littlefe -scheduler torque -rolls ganglia,hpc
//	xcbc -cluster littlefe-original      # demonstrates the diskless failure
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xcbc/internal/cluster"
	"xcbc/internal/core"
	"xcbc/internal/sim"
)

var clusterBuilders = map[string]func() *cluster.Cluster{
	"littlefe":          cluster.NewLittleFe,
	"littlefe-original": cluster.NewLittleFeOriginal,
	"limulus":           cluster.NewLimulusHPC200,
	"marshall":          cluster.NewMarshall,
	"montana":           cluster.NewMontanaState,
	"kansas":            cluster.NewKansas,
	"pbarc":             cluster.NewPBARC,
	"howard":            cluster.NewHoward,
}

func main() {
	clusterName := flag.String("cluster", "littlefe", "cluster to build: littlefe, littlefe-original, limulus, marshall, montana, kansas, pbarc, howard")
	scheduler := flag.String("scheduler", "torque", "job manager: torque, slurm, or sge (Table 1: choose one)")
	rolls := flag.String("rolls", "ganglia,hpc", "comma-separated optional rolls from Table 1")
	verbose := flag.Bool("v", false, "print the installer log")
	flag.Parse()

	build, ok := clusterBuilders[*clusterName]
	if !ok {
		fmt.Fprintf(os.Stderr, "xcbc: unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	c := build()
	eng := sim.NewEngine()
	var optional []string
	if *rolls != "" {
		optional = strings.Split(*rolls, ",")
	}
	d, err := core.BuildXCBC(eng, c, core.Options{Scheduler: *scheduler, OptionalRolls: optional})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xcbc: build failed: %v\n", err)
		fmt.Fprintln(os.Stderr, "hint: Rocks cannot install diskless nodes; the paper's modified")
		fmt.Fprintln(os.Stderr, "LittleFe adds mSATA drives, and diskless machines (Limulus) take the XNIT path.")
		os.Exit(1)
	}
	fmt.Printf("XCBC %s build complete on %s (%s)\n", core.XCBCVersion, c.Name, c.Site)
	fmt.Printf("  scheduler:          %s\n", d.Scheduler)
	fmt.Printf("  nodes installed:    %d\n", c.NodeCount())
	fmt.Printf("  packages installed: %d (across all nodes)\n", d.PackagesInstalled)
	fmt.Printf("  simulated duration: %v\n", d.InstallDuration)
	fmt.Printf("  Rpeak:              %.1f GFLOPS\n", c.RpeakGFLOPS())
	if *verbose {
		fmt.Println("installer log:")
		for _, line := range d.Installer.Log {
			fmt.Println("  " + line)
		}
	}
	rep, err := d.CompatReport()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcbc:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())
	fmt.Println(cluster.RenderTopology(c))
}
