// Command xcbc performs the "all at once, from scratch" XSEDE-compatible
// basic cluster build on a simulated machine: it assembles the Rocks
// distribution with the XSEDE roll, installs the frontend, kickstarts every
// compute node, and reports the resulting stack and compatibility score.
//
// Usage:
//
//	xcbc -cluster littlefe -scheduler torque -rolls ganglia,hpc
//	xcbc -cluster littlefe-original      # demonstrates the diskless failure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"xcbc/internal/cluster"
	"xcbc/pkg/xcbc"
)

func main() {
	clusterName := flag.String("cluster", "littlefe",
		"cluster to build: "+strings.Join(xcbc.Clusters(), ", "))
	scheduler := flag.String("scheduler", "torque", "job manager: torque, slurm, or sge (Table 1: choose one)")
	rolls := flag.String("rolls", "ganglia,hpc", "comma-separated optional rolls from Table 1")
	nodes := flag.Int("nodes", 0, "override the compute node count (0 = as cataloged)")
	parallelism := flag.Int("parallelism", 1, "compute kickstarts per wave (1 = sequential)")
	retries := flag.Int("retries", 0, "per-node install retries before quarantine")
	progress := flag.Bool("progress", false, "print each build step as it happens")
	verbose := flag.Bool("v", false, "print the installer log")
	flag.Parse()

	var optional []string
	if *rolls != "" {
		optional = strings.Split(*rolls, ",")
	}
	opts := []xcbc.Option{
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithRolls(optional...),
		xcbc.WithParallelism(*parallelism),
		xcbc.WithRetries(*retries),
	}
	if *nodes > 0 {
		opts = append(opts, xcbc.WithNodeCount(*nodes))
	}

	// The async path: start the build as a job, stream its journal while it
	// runs, then wait for the terminal state.
	h, err := xcbc.NewXCBC(opts...).Start(context.Background())
	if err != nil {
		fail(err)
	}
	if *progress {
		h.Watch(context.Background(), func(ev xcbc.Event) {
			fmt.Printf("  [%-12s] %s %s\n", ev.Stage, ev.Node, ev.Message)
		})
	}
	d, err := h.Wait(context.Background())
	if err != nil {
		fail(err)
	}
	c := d.Hardware()
	fmt.Printf("XCBC %s build complete on %s (%s)\n", xcbc.XCBCVersion, c.Name, c.Site)
	fmt.Printf("  scheduler:          %s\n", d.Scheduler())
	fmt.Printf("  nodes installed:    %d\n", c.NodeCount()-len(d.Quarantined()))
	if q := d.Quarantined(); len(q) > 0 {
		fmt.Printf("  quarantined:        %v\n", q)
	}
	fmt.Printf("  packages installed: %d (across all nodes)\n", d.PackagesInstalled())
	fmt.Printf("  simulated duration: %v (parallelism %d)\n", d.InstallDuration(), *parallelism)
	fmt.Printf("  Rpeak:              %.1f GFLOPS\n", c.RpeakGFLOPS())
	if *verbose {
		fmt.Println("installer log:")
		for _, line := range d.InstallLog() {
			fmt.Println("  " + line)
		}
	}
	rep, err := d.Compat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcbc:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Text)
	fmt.Println(cluster.RenderTopology(c))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "xcbc: build failed: %v\n", err)
	fmt.Fprintln(os.Stderr, "hint: Rocks cannot install diskless nodes; the paper's modified")
	fmt.Fprintln(os.Stderr, "LittleFe adds mSATA drives, and diskless machines (Limulus) take the XNIT path.")
	os.Exit(1)
}
