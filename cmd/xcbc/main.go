// Command xcbc performs the "all at once, from scratch" XSEDE-compatible
// basic cluster build on a simulated machine: it assembles the Rocks
// distribution with the XSEDE roll, installs the frontend, kickstarts every
// compute node, and reports the resulting stack and compatibility score.
//
// Usage:
//
//	xcbc -cluster littlefe -scheduler torque -rolls ganglia,hpc
//	xcbc -cluster littlefe-original      # demonstrates the diskless failure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"xcbc/internal/cluster"
	"xcbc/pkg/xcbc"
)

func main() {
	clusterName := flag.String("cluster", "littlefe",
		"cluster to build: "+strings.Join(xcbc.Clusters(), ", "))
	scheduler := flag.String("scheduler", "torque", "job manager: torque, slurm, or sge (Table 1: choose one)")
	rolls := flag.String("rolls", "ganglia,hpc", "comma-separated optional rolls from Table 1")
	nodes := flag.Int("nodes", 0, "override the compute node count (0 = as cataloged)")
	progress := flag.Bool("progress", false, "print each build step as it happens")
	verbose := flag.Bool("v", false, "print the installer log")
	flag.Parse()

	var optional []string
	if *rolls != "" {
		optional = strings.Split(*rolls, ",")
	}
	opts := []xcbc.Option{
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithRolls(optional...),
	}
	if *nodes > 0 {
		opts = append(opts, xcbc.WithNodeCount(*nodes))
	}
	if *progress {
		opts = append(opts, xcbc.WithProgress(func(ev xcbc.Event) {
			fmt.Printf("  [%-12s] %s %s\n", ev.Stage, ev.Node, ev.Message)
		}))
	}

	d, err := xcbc.NewXCBC(opts...).Deploy(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "xcbc: build failed: %v\n", err)
		fmt.Fprintln(os.Stderr, "hint: Rocks cannot install diskless nodes; the paper's modified")
		fmt.Fprintln(os.Stderr, "LittleFe adds mSATA drives, and diskless machines (Limulus) take the XNIT path.")
		os.Exit(1)
	}
	c := d.Hardware()
	fmt.Printf("XCBC %s build complete on %s (%s)\n", xcbc.XCBCVersion, c.Name, c.Site)
	fmt.Printf("  scheduler:          %s\n", d.Scheduler())
	fmt.Printf("  nodes installed:    %d\n", c.NodeCount())
	fmt.Printf("  packages installed: %d (across all nodes)\n", d.PackagesInstalled())
	fmt.Printf("  simulated duration: %v\n", d.InstallDuration())
	fmt.Printf("  Rpeak:              %.1f GFLOPS\n", c.RpeakGFLOPS())
	if *verbose {
		fmt.Println("installer log:")
		for _, line := range d.InstallLog() {
			fmt.Println("  " + line)
		}
	}
	rep, err := d.Compat()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcbc:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Text)
	fmt.Println(cluster.RenderTopology(c))
}
