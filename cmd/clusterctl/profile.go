package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags is the -cpuprofile/-memprofile pair shared by the
// simulator-heavy subcommands (`fleet run`, `campaign run`), so a slow
// scenario or sweep can be profiled in place:
//
//	clusterctl fleet run campus-100 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
type profileFlags struct {
	cpu string
	mem string
}

// register installs the flags on fs.
func (p *profileFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file on exit")
}

// start begins CPU profiling if requested and returns a stop function that
// finishes the CPU profile and writes the heap profile. The stop function
// must run before the process reports its result (defer it); it is safe to
// call when no profiling was requested.
func (p *profileFlags) start() (func(), error) {
	var cpuFile *os.File
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "clusterctl: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "clusterctl: -memprofile:", err)
			}
		}
	}, nil
}
