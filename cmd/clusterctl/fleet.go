package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xcbc/pkg/xcbc"
)

// fleetCmd dispatches `clusterctl fleet run|scenarios|ls|runs`: the
// fleet-scale scenario engine, run locally through the SDK (no server
// needed), plus the REST views onto a control-plane server's fleets.
//
//	clusterctl fleet scenarios
//	clusterctl fleet run campus-100
//	clusterctl fleet run chaos.json -seed 7 -trace trace.jsonl -v
//	clusterctl fleet ls   -server URL
//	clusterctl fleet runs -server URL -id f1
//
// `run` accepts a built-in scenario name (see `fleet scenarios`) or a path
// to a scenario JSON file. Exit codes: 0 the scenario passed its
// invariants, 1 it failed or could not run, 2 the scenario itself was
// unusable (unknown name, malformed JSON). `ls` and `runs` follow the
// day-2 client contract instead: 0 success, 1 request or server error,
// 2 retryable not-ready.
func fleetCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "clusterctl fleet: need a subcommand: run, scenarios, ls, or runs")
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "scenarios":
		fs := flag.NewFlagSet("fleet scenarios", flag.ContinueOnError)
		fs.SetOutput(stderr)
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		fmt.Fprintf(stdout, "%-18s %-8s %-6s %s\n", "NAME", "MEMBERS", "SEED", "DESCRIPTION")
		for _, name := range xcbc.BuiltinScenarios() {
			sc, err := xcbc.BuiltinScenario(name)
			if err != nil {
				continue
			}
			fmt.Fprintf(stdout, "%-18s %-8d %-6d %s\n", sc.Name(), sc.Members(), sc.Seed(), sc.Description())
		}
		return 0
	case "run":
		fs := flag.NewFlagSet("fleet run", flag.ContinueOnError)
		fs.SetOutput(stderr)
		seed := fs.Int64("seed", 0, "override the scenario's RNG seed (0 = keep)")
		tracePath := fs.String("trace", "", "write the JSONL trace to this file (\"-\" = stdout)")
		verbose := fs.Bool("v", false, "print every trace event as it is reported")
		var prof profileFlags
		prof.register(fs)
		// Accept the scenario before or after the flags: both
		// `fleet run campus-100 -v` and `fleet run -v campus-100` work.
		target := ""
		if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			target, rest = rest[0], rest[1:]
		}
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		switch {
		case target == "" && fs.NArg() == 1:
			target = fs.Arg(0)
		case target != "" && fs.NArg() == 0:
		default:
			fmt.Fprintln(stderr, "clusterctl fleet run: need exactly one scenario (a built-in name or a JSON file)")
			return 2
		}
		sc, code := loadScenarioArg(target, stderr)
		if sc == nil {
			return code
		}
		if *seed != 0 {
			sc.SetSeed(*seed)
		}
		stopProf, err := prof.start()
		if err != nil {
			fmt.Fprintln(stderr, "clusterctl fleet run:", err)
			return 2
		}
		fmt.Fprintf(stdout, "running scenario %s: %d members, seed %d\n", sc.Name(), sc.Members(), sc.Seed())
		res, err := xcbc.RunScenario(context.Background(), sc)
		stopProf()
		if err != nil {
			fmt.Fprintln(stderr, "clusterctl fleet run:", err)
			return 1
		}
		if *verbose {
			for _, ev := range res.Trace() {
				fmt.Fprintf(stdout, "  %4d [%2d] %-22s %-18s %-14s %s\n",
					ev.Seq, ev.Phase, ev.Kind, ev.Member, ev.Node, ev.Detail)
			}
		}
		if *tracePath != "" {
			trace := res.TraceJSONL()
			if *tracePath == "-" {
				stdout.Write(trace)
			} else if err := os.WriteFile(*tracePath, trace, 0o644); err != nil {
				fmt.Fprintln(stderr, "clusterctl fleet run: writing trace:", err)
				return 1
			}
		}
		st := res.Stats()
		fmt.Fprintf(stdout,
			"fleet: %d/%d ready (%d failed, %d cancelled), %d nodes quarantined\n",
			st.Ready, st.Members, st.Failed, st.Cancelled, st.QuarantinedNodes)
		fmt.Fprintf(stdout,
			"work:  %d jobs submitted, %d cancelled, %d updates applied, simulated end %s\n",
			st.JobsSubmitted, st.JobsCancelled, st.UpdatesApplied, st.SimulatedEnd)
		if !res.Passed() {
			fmt.Fprintf(stdout, "FAILED: %d invariant violation(s)\n", len(res.Violations()))
			for _, v := range res.Violations() {
				fmt.Fprintln(stdout, "  -", v)
			}
			return 1
		}
		fmt.Fprintln(stdout, "PASSED: all invariants held")
		return 0
	case "ls":
		fs := flag.NewFlagSet("fleet ls", flag.ContinueOnError)
		fs.SetOutput(stderr)
		server := fs.String("server", "http://localhost:8080", "control-plane base URL")
		keyFlag(fs)
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		var list struct {
			Count  int `json:"count"`
			Fleets []struct {
				ID        string `json:"id"`
				Name      string `json:"name"`
				Scenarios int    `json:"scenarios"`
				Status    struct {
					Members int `json:"members"`
					Ready   int `json:"ready"`
					Failed  int `json:"failed"`
				} `json:"status"`
			} `json:"fleets"`
		}
		if code := apiCall("GET", *server+"/api/v1/fleets", nil, &list); code != 0 {
			return code
		}
		fmt.Fprintf(stdout, "%-6s %-16s %-8s %-6s %-6s %s\n", "ID", "NAME", "MEMBERS", "READY", "FAILED", "RUNS")
		for _, f := range list.Fleets {
			fmt.Fprintf(stdout, "%-6s %-16s %-8d %-6d %-6d %d\n",
				f.ID, f.Name, f.Status.Members, f.Status.Ready, f.Status.Failed, f.Scenarios)
		}
		return 0
	case "runs":
		fs := flag.NewFlagSet("fleet runs", flag.ContinueOnError)
		fs.SetOutput(stderr)
		server := fs.String("server", "http://localhost:8080", "control-plane base URL")
		keyFlag(fs)
		id := fs.String("id", "", "fleet ID (e.g. f1)")
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if *id == "" {
			fmt.Fprintln(stderr, "clusterctl fleet runs: -id is required (the fleet ID, e.g. f1)")
			return 1
		}
		var list struct {
			Runs []struct {
				ID         string   `json:"id"`
				Scenario   string   `json:"scenario"`
				State      string   `json:"state"`
				Passed     bool     `json:"passed"`
				Violations []string `json:"violations"`
				NextCursor int      `json:"next_cursor"`
			} `json:"runs"`
		}
		if code := apiCall("GET", *server+"/api/v1/fleets/"+*id+"/scenarios", nil, &list); code != 0 {
			return code
		}
		fmt.Fprintf(stdout, "%-6s %-18s %-8s %-7s %-10s %s\n", "ID", "SCENARIO", "STATE", "PASSED", "VIOLATIONS", "EVENTS")
		for _, r := range list.Runs {
			fmt.Fprintf(stdout, "%-6s %-18s %-8s %-7t %-10d %d\n",
				r.ID, r.Scenario, r.State, r.Passed, len(r.Violations), r.NextCursor)
		}
		return 0
	}
	fmt.Fprintf(stderr, "clusterctl fleet: unknown subcommand %q (use run, scenarios, ls, or runs)\n", sub)
	return 2
}

// loadScenarioArg resolves a built-in name or a JSON file path. On failure
// it prints the problem and returns (nil, exit code).
func loadScenarioArg(arg string, stderr io.Writer) (*xcbc.Scenario, int) {
	sc, err := xcbc.BuiltinScenario(arg)
	if err == nil {
		return sc, 0
	}
	if !errors.Is(err, xcbc.ErrUnknownScenario) {
		fmt.Fprintln(stderr, "clusterctl fleet run:", err)
		return nil, 2
	}
	data, rerr := os.ReadFile(arg)
	if rerr != nil {
		fmt.Fprintf(stderr, "clusterctl fleet run: %q is neither a built-in scenario (%v) nor a readable file (%v)\n",
			arg, xcbc.BuiltinScenarios(), rerr)
		return nil, 2
	}
	sc, err = xcbc.LoadScenario(data)
	if err != nil {
		fmt.Fprintln(stderr, "clusterctl fleet run:", err)
		return nil, 2
	}
	return sc, 0
}
