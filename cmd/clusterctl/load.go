package main

// clusterctl load — drive a control-plane server with internal/loadgen's
// deterministic seeded request mix and print wrk-style results. The mix
// is read-mostly (paginated lists, discovery, durability status) plus a
// depsolve POST, so it is safe to point at a server holding real state:
// it creates and deletes nothing.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"

	"xcbc/internal/loadgen"
)

func loadCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://localhost:8080", "control-plane base URL")
	n := fs.Int("n", 1000, "total requests to issue")
	workers := fs.Int("workers", 8, "concurrent workers")
	seed := fs.Uint64("seed", 1, "seed for the deterministic request mix")
	keyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	var hdr http.Header
	if apiKey != "" {
		hdr = http.Header{"Authorization": {"Bearer " + apiKey}}
	}
	res, err := loadgen.Run(loadgen.Spec{
		BaseURL: strings.TrimRight(*server, "/"),
		Header:  hdr,
		Mix: []loadgen.Request{
			{Method: "GET", Path: "/api/v1/fleets", Weight: 5},
			{Method: "GET", Path: "/api/v1/deployments", Weight: 4},
			{Method: "GET", Path: "/api/v1/fleets?limit=10", Weight: 2},
			{Method: "GET", Path: "/api/v1/scenarios", Weight: 2},
			{Method: "GET", Path: "/api/v1/store", Weight: 1},
			{Method: "GET", Path: "/api/v1", Weight: 1},
			{Method: "POST", Path: "/api/v1/depsolve", Body: `{"install":["gromacs"]}`, Weight: 1},
		},
		Workers:  *workers,
		Requests: *n,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "clusterctl:", err)
		return 1
	}
	fmt.Fprint(stdout, res.String())
	if bad := res.Unexpected(); bad > 0 {
		fmt.Fprintf(stderr, "clusterctl: %d responses outside 2xx/429 (wrong -api-key, or a server bug)\n", bad)
		return 1
	}
	return 0
}
