package main

import (
	"os"
	"path/filepath"
	"testing"

	"xcbc/pkg/xcbc"
)

// checkProfile asserts that path holds a non-empty pprof profile. Profiles
// are gzip-compressed protobufs, so the gzip magic is a cheap validity
// check that catches empty or truncated files.
func checkProfile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("%s: %d bytes, not a gzip-compressed profile", path, len(data))
	}
}

// scenarioFile writes a small generated scenario to disk and returns its
// path — cheaper to run than any built-in, so the profiling plumbing can
// be exercised without a 100-member fleet.
func scenarioFile(t *testing.T, seed int64) string {
	t.Helper()
	data, err := xcbc.GenerateScenario(seed).JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFleetRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	code, _, stderr := runFleet(t, "run", scenarioFile(t, 11),
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	checkProfile(t, cpu)
	checkProfile(t, mem)
}

func TestFleetRunBadProfilePath(t *testing.T) {
	code, _, stderr := runFleet(t, "run", scenarioFile(t, 11),
		"-cpuprofile", filepath.Join(t.TempDir(), "missing", "cpu.out"))
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, stderr)
	}
}

func TestCampaignRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	code, _, stderr := runCampaign(t, "run", "-seeds", "1",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	checkProfile(t, cpu)
	checkProfile(t, mem)
}
