package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xcbc/pkg/xcbc"
)

func runCampaign(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = campaignCmd(args, &out, &errb)
	return code, out.String(), errb.String()
}

func runScenario(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = scenarioCmd(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCampaignUsageErrors(t *testing.T) {
	if code, _, _ := runCampaign(t); code != 2 {
		t.Fatalf("no subcommand: exit %d, want 2", code)
	}
	if code, _, _ := runCampaign(t, "warp"); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
	if code, _, _ := runCampaign(t, "run", "-seeds", "0"); code != 2 {
		t.Fatalf("zero seeds: exit %d, want 2", code)
	}
	if code, _, _ := runCampaign(t, "run", "-seeds", "2", "stray"); code != 2 {
		t.Fatalf("stray argument: exit %d, want 2", code)
	}
	if code, _, _ := runCampaign(t, "run", "-not-a-flag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestCampaignRunClean sweeps a few seeds on the fixed tree: every
// generated scenario must pass the full battery and the command must exit
// zero with the summary on stdout.
func TestCampaignRunClean(t *testing.T) {
	code, out, stderr := runCampaign(t, "run", "-seeds", "3", "-workers", "2", "-v")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "3/3 seeds passed") {
		t.Fatalf("summary missing:\n%s", out)
	}
	for _, seed := range []string{"seed 0", "seed 1", "seed 2"} {
		if !strings.Contains(out, seed) {
			t.Fatalf("-v output missing %q:\n%s", seed, out)
		}
	}
}

func TestScenarioValidateValid(t *testing.T) {
	doc, err := xcbc.GenerateScenario(5).JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gen.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runScenario(t, "validate", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "valid") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestScenarioValidateInvalid(t *testing.T) {
	cases := map[string]string{
		"not-json":     `{{{`,
		"unknown-kind": `{"name":"x","fleet":{"members":1},"phases":[{"kind":"warp"}]}`,
		"stray-field":  `{"name":"x","fleet":{"members":1},"phases":[{"kind":"provision","count":3}]}`,
		"no-cores":     `{"name":"x","fleet":{"members":1},"phases":[{"kind":"provision"},{"kind":"jobs","count":1,"runtime":"10m"}]}`,
	}
	for name, script := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
				t.Fatal(err)
			}
			code, _, stderr := runScenario(t, "validate", path)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, "invalid scenario") {
				t.Fatalf("stderr does not explain: %s", stderr)
			}
		})
	}
	if code, _, _ := runScenario(t, "validate", filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	if code, _, _ := runScenario(t, "validate"); code != 2 {
		t.Fatalf("no file: exit %d, want 2", code)
	}
	if code, _, _ := runScenario(t, "shrink"); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
}

// TestCampaignReproRoundTrip writes repros with -repro-dir and checks any
// produced file loads back as a valid scenario. A clean sweep writes none;
// the directory must simply exist and the command must not fail because of
// the flag.
func TestCampaignReproRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "repros")
	code, out, stderr := runCampaign(t, "run", "-seeds", "2", "-workers", "2", "-repro-dir", dir)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("repro dir not created: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := xcbc.LoadScenario(data); err != nil {
			t.Fatalf("written repro %s does not load: %v", e.Name(), err)
		}
	}
}
