package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestAPICallExitCodes pins the day-2 client's exit-code contract: 0 on
// success, 1 on request/server errors, and — the retryable case — 2 when
// the server answers 409 with a deployment state, meaning "the build has
// not settled yet, wait and retry" rather than "the request is wrong".
func TestAPICallExitCodes(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":7,"state":"running"}`))
	})
	mux.HandleFunc("GET /missing", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown cluster"}`))
	})
	mux.HandleFunc("GET /building", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"cluster d1 is not operable: deployment state is \"building\"","state":"building","hint":"wait for ready"}`))
	})
	// A 409 without a deployment state (some other conflict) is NOT the
	// retryable case and must exit 1.
	mux.HandleFunc("GET /conflict", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"some other conflict"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var job jobJSON
	if code := apiCall("GET", srv.URL+"/ok", nil, &job); code != 0 || job.ID != 7 {
		t.Errorf("ok: code=%d job=%+v, want 0 and id 7", code, job)
	}
	if code := apiCall("GET", srv.URL+"/missing", nil, nil); code != 1 {
		t.Errorf("missing: code=%d, want 1", code)
	}
	if code := apiCall("GET", srv.URL+"/building", nil, nil); code != 2 {
		t.Errorf("building: code=%d, want 2 (retryable not-ready)", code)
	}
	if code := apiCall("GET", srv.URL+"/conflict", nil, nil); code != 1 {
		t.Errorf("bare conflict: code=%d, want 1", code)
	}
	if code := apiCall("GET", "http://127.0.0.1:1/unreachable", nil, nil); code != 1 {
		t.Errorf("unreachable: code=%d, want 1", code)
	}
}
