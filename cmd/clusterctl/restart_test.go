package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xcbc/pkg/xcbc/api"
)

// httpJSON is a minimal client for driving the control plane in tests.
func httpJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	var req *http.Request
	var err error
	if body != "" {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitState polls a deployment or scenario run until its state leaves the
// transient set.
func waitState(t *testing.T, url string, transient ...string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info struct {
			State string `json:"state"`
		}
		if code := httpJSON(t, "GET", url, "", &info); code != 200 {
			t.Fatalf("GET %s: %d", url, code)
		}
		settled := true
		for _, s := range transient {
			if info.State == s {
				settled = false
			}
		}
		if settled {
			return info.State
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never settled", url)
	return ""
}

// TestClusterctlAgainstRestartedServer is the operator's crash story end
// to end: deploy and operate through a durable control plane, kill it,
// restart on the same data directory, and drive the recovered state with
// the same clusterctl commands — same outputs, same exit-code contract.
func TestClusterctlAgainstRestartedServer(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := api.Open(api.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h1 := httptest.NewServer(s1.Handler())

	// A ready cluster with one job, and a fleet with one settled run.
	if code := httpJSON(t, "POST", h1.URL+"/api/v1/deployments",
		`{"cluster":"littlefe","scheduler":"torque"}`, nil); code != 202 {
		t.Fatalf("create deployment: %d", code)
	}
	if st := waitState(t, h1.URL+"/api/v1/deployments/d1", "pending", "building"); st != "ready" {
		t.Fatalf("deployment settled %q", st)
	}
	if code := jobsCmd([]string{"submit", "-server", h1.URL, "-id", "d1",
		"-name", "relax", "-user", "alice", "-cores", "2"}); code != 0 {
		t.Fatalf("jobs submit exit %d, want 0", code)
	}
	scenario := `{"name":"tiny","seed":7,"fleet":{"members":2,"nodes":2,"workers":2},` +
		`"phases":[{"kind":"provision"},` +
		`{"kind":"jobs","count":2,"cores":1,"runtime":"5m","walltime":"30m"},` +
		`{"kind":"advance","duration":"1h"},` +
		`{"kind":"assert","invariants":[{"name":"all-ready"}]}]}`
	if code := httpJSON(t, "POST", h1.URL+"/api/v1/fleets",
		`{"name":"tiny","members":2,"nodes":2,"workers":2,"provision":false}`, nil); code != 202 {
		t.Fatalf("create fleet: %d", code)
	}
	if code := httpJSON(t, "POST", h1.URL+"/api/v1/fleets/f1/scenarios",
		`{"scenario":`+scenario+`}`, nil); code != 202 {
		t.Fatalf("run scenario: %d", code)
	}
	if st := waitState(t, h1.URL+"/api/v1/fleets/f1/scenarios/s1", "running"); st != "passed" {
		t.Fatalf("scenario run settled %q", st)
	}

	// Crash: the process goes away, the data directory stays.
	h1.Close()
	s1.Close()

	s2, rep, err := api.Open(api.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep.Rebuilt != 1 || rep.Fleets != 1 || rep.Runs != 1 {
		t.Fatalf("recovery report = %+v", rep)
	}
	h2 := httptest.NewServer(s2.Handler())
	defer h2.Close()

	// The same day-2 commands work against the recovered state with the
	// same exit codes.
	if code := jobsCmd([]string{"ls", "-server", h2.URL, "-id", "d1"}); code != 0 {
		t.Errorf("jobs ls after restart exit %d, want 0", code)
	}
	if code := metricsCmd([]string{"-server", h2.URL, "-id", "d1"}); code != 0 {
		t.Errorf("metrics after restart exit %d, want 0", code)
	}
	if code := jobsCmd([]string{"ls", "-server", h2.URL, "-id", "d99"}); code != 1 {
		t.Errorf("jobs ls on unknown cluster exit %d, want 1", code)
	}

	var stdout, stderr bytes.Buffer
	if code := fleetCmd([]string{"ls", "-server", h2.URL}, &stdout, &stderr); code != 0 {
		t.Fatalf("fleet ls exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "f1") || !strings.Contains(stdout.String(), "tiny") {
		t.Errorf("fleet ls output missing recovered fleet:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := fleetCmd([]string{"runs", "-server", h2.URL, "-id", "f1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("fleet runs exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "passed") || !strings.Contains(out, "true") {
		t.Errorf("fleet runs output missing recovered run:\n%s", out)
	}

	stdout.Reset()
	if code := fleetCmd([]string{"runs", "-server", h2.URL, "-id", "f99"}, &stdout, &stderr); code != 1 {
		t.Errorf("fleet runs on unknown fleet exit %d, want 1", code)
	}
	if code := fleetCmd([]string{"runs", "-server", h2.URL}, &stdout, &stderr); code != 1 {
		t.Errorf("fleet runs without -id exit %d, want 1", code)
	}
}
