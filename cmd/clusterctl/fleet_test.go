package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runFleet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = fleetCmd(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFleetScenariosListsBuiltins(t *testing.T) {
	code, out, _ := runFleet(t, "scenarios")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"campus-100", "rolling-update", "chaos-kickstart"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestFleetRunUsageErrors(t *testing.T) {
	if code, _, _ := runFleet(t); code != 2 {
		t.Fatalf("no subcommand: exit %d, want 2", code)
	}
	if code, _, _ := runFleet(t, "warp"); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
	if code, _, _ := runFleet(t, "run"); code != 2 {
		t.Fatalf("run without scenario: exit %d, want 2", code)
	}
	if code, _, stderr := runFleet(t, "run", "no-such-scenario-or-file"); code != 2 {
		t.Fatalf("unknown scenario: exit %d (%s), want 2", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","fleet":{"members":1},"phases":[{"kind":"warp"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runFleet(t, "run", bad); code != 2 || !strings.Contains(stderr, "invalid scenario") {
		t.Fatalf("malformed file: exit %d stderr %q, want 2 + invalid scenario", code, stderr)
	}
}

func TestFleetRunScenarioFile(t *testing.T) {
	script := `{
		"name": "cli-smoke", "seed": 3,
		"fleet": {"members": 2, "nodes": 2, "workers": 2},
		"phases": [
			{"kind": "provision"},
			{"kind": "jobs", "count": 1, "cores": 1, "runtime": "10m"},
			{"kind": "assert", "invariants": [{"name": "all-ready"}, {"name": "jobs-conserved"}]}
		]
	}`
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, stderr := runFleet(t, "run", path, "-trace", trace, "-v")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if !strings.Contains(out, "PASSED") || !strings.Contains(out, "2/2 ready") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"kind":"scenario.end"`)) {
		t.Fatalf("trace file missing scenario.end:\n%s", data)
	}

	// Same seed, same trace — the CLI surfaces the determinism contract.
	trace2 := filepath.Join(t.TempDir(), "trace2.jsonl")
	if code, _, _ := runFleet(t, "run", path, "-trace", trace2); code != 0 {
		t.Fatalf("second run exit %d", code)
	}
	data2, err := os.ReadFile(trace2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("same scenario and seed produced different traces through the CLI")
	}

	// A different seed is a different run (flags reach the engine).
	code, out, _ = runFleet(t, "run", path, "-seed", "99")
	if code != 0 {
		t.Fatalf("seeded run exit %d", code)
	}
	if !strings.Contains(out, "seed 99") {
		t.Fatalf("seed override not reported:\n%s", out)
	}
}

func TestFleetRunViolationExitsOne(t *testing.T) {
	script := `{
		"name": "cli-fail", "seed": 1,
		"fleet": {"members": 1, "nodes": 1, "workers": 1},
		"phases": [
			{"kind": "provision"},
			{"kind": "assert", "invariants": [{"name": "min-ready", "limit": 5}]}
		]
	}`
	path := filepath.Join(t.TempDir(), "fail.json")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runFleet(t, "run", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "min-ready") {
		t.Fatalf("violation not reported:\n%s", out)
	}
}
