// Command clusterctl builds an XCBC cluster, replays a small batch workload
// through the portable command layer, and prints scheduler, monitoring, and
// power reports — a one-command tour of the running system.
//
// Usage:
//
//	clusterctl -cluster littlefe -scheduler torque
//	clusterctl -cluster limulus -power on-demand
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xcbc/internal/cluster"
	"xcbc/internal/core"
	"xcbc/internal/power"
	"xcbc/internal/sim"
)

func main() {
	clusterName := flag.String("cluster", "littlefe", "cluster: littlefe or marshall (XCBC path)")
	scheduler := flag.String("scheduler", "torque", "torque, slurm, or sge")
	powerPolicy := flag.String("power", "always-on", "always-on, on-demand, or scheduled")
	flag.Parse()

	builders := map[string]func() *cluster.Cluster{
		"littlefe": cluster.NewLittleFe,
		"marshall": cluster.NewMarshall,
		"howard":   cluster.NewHoward,
	}
	build, ok := builders[*clusterName]
	if !ok {
		fmt.Fprintf(os.Stderr, "clusterctl: unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	policies := map[string]power.Policy{
		"always-on": power.AlwaysOn, "on-demand": power.OnDemand, "scheduled": power.Scheduled,
	}
	policy, ok := policies[*powerPolicy]
	if !ok {
		fmt.Fprintf(os.Stderr, "clusterctl: unknown power policy %q\n", *powerPolicy)
		os.Exit(2)
	}

	eng := sim.NewEngine()
	d, err := core.BuildXCBC(eng, build(), core.Options{Scheduler: *scheduler, PowerPolicy: policy})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		os.Exit(1)
	}
	fmt.Printf("built %s with %s in %v (simulated)\n\n", d.Cluster.Name, *scheduler, d.InstallDuration)

	// Replay a small workload with the user-facing commands.
	var cmds []string
	if *scheduler == "slurm" {
		cmds = []string{
			"sbatch -J md-relax -n 4 -t 60 -u alice relax.sh",
			"sbatch -J blast -n 2 -t 30 -u bob blast.sh",
			"sbatch -J assembly -n 8 -t 120 -u carol trinity.sh",
		}
	} else {
		cmds = []string{
			"qsub -N md-relax -l nodes=2:ppn=2,walltime=01:00:00 -u alice relax.sh",
			"qsub -N blast -l nodes=1:ppn=2,walltime=00:30:00 -u bob blast.sh",
			"qsub -N assembly -l nodes=4:ppn=2,walltime=02:00:00 -u carol trinity.sh",
		}
	}
	for _, cmd := range cmds {
		out, err := d.Exec(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterctl:", err)
			os.Exit(1)
		}
		fmt.Printf("$ %s\n%s\n", cmd, out)
	}
	status := "qstat"
	if *scheduler == "slurm" {
		status = "squeue"
	}
	out, _ := d.Exec(status)
	fmt.Printf("$ %s\n%s\n", status, out)

	// Monitor while the workload runs.
	d.Monitor.Start(eng, time.Minute, 30)
	eng.RunUntil(eng.Now() + sim.Time(30*time.Minute))
	fmt.Print(d.Monitor.Report())

	eng.Run()
	total := d.Power.Finalize()
	fmt.Printf("\nworkload complete at %v; %d jobs finished; energy %.1f Wh (policy %s)\n",
		eng.Now(), len(d.Batch.History()), total, *powerPolicy)
}
