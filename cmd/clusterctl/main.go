// Command clusterctl builds an XCBC cluster, replays a small batch workload
// through the portable command layer, and prints scheduler, monitoring, and
// power reports — a one-command tour of the running system.
//
// Usage:
//
//	clusterctl -cluster littlefe -scheduler torque
//	clusterctl -cluster limulus -power on-demand
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"xcbc/internal/sim"
	"xcbc/pkg/xcbc"
)

func main() {
	clusterName := flag.String("cluster", "littlefe", "cluster: littlefe, marshall, or howard (XCBC path)")
	scheduler := flag.String("scheduler", "torque", "torque, slurm, or sge")
	powerPolicy := flag.String("power", "always-on", "always-on, on-demand, or scheduled")
	flag.Parse()

	d, err := xcbc.NewXCBC(
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithPowerPolicy(xcbc.PowerPolicy(*powerPolicy)),
	).Deploy(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		os.Exit(1)
	}
	eng := d.Engine()
	fmt.Printf("built %s with %s in %v (simulated)\n\n", d.Hardware().Name, *scheduler, d.InstallDuration())

	// Replay a small workload with the user-facing commands.
	var cmds []string
	if *scheduler == "slurm" {
		cmds = []string{
			"sbatch -J md-relax -n 4 -t 60 -u alice relax.sh",
			"sbatch -J blast -n 2 -t 30 -u bob blast.sh",
			"sbatch -J assembly -n 8 -t 120 -u carol trinity.sh",
		}
	} else {
		cmds = []string{
			"qsub -N md-relax -l nodes=2:ppn=2,walltime=01:00:00 -u alice relax.sh",
			"qsub -N blast -l nodes=1:ppn=2,walltime=00:30:00 -u bob blast.sh",
			"qsub -N assembly -l nodes=4:ppn=2,walltime=02:00:00 -u carol trinity.sh",
		}
	}
	for _, cmd := range cmds {
		out, err := d.Exec(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterctl:", err)
			os.Exit(1)
		}
		fmt.Printf("$ %s\n%s\n", cmd, out)
	}
	status := "qstat"
	if *scheduler == "slurm" {
		status = "squeue"
	}
	out, _ := d.Exec(status)
	fmt.Printf("$ %s\n%s\n", status, out)

	// Monitor while the workload runs.
	d.Monitor().Start(eng, time.Minute, 30)
	eng.RunUntil(eng.Now() + sim.Time(30*time.Minute))
	fmt.Print(d.Monitor().Report())

	eng.Run()
	total := d.PowerManager().Finalize()
	fmt.Printf("\nworkload complete at %v; %d jobs finished; energy %.1f Wh (policy %s)\n",
		eng.Now(), len(d.Batch().History()), total, *powerPolicy)
}
