// Command clusterctl builds an XCBC cluster, replays a small batch workload
// through the portable command layer, and prints scheduler, monitoring, and
// power reports — a one-command tour of the running system.
//
// Usage:
//
//	clusterctl -cluster littlefe -scheduler torque
//	clusterctl -cluster limulus -power on-demand
//	clusterctl deploy -cluster littlefe -parallelism 8 -watch
//
// The deploy subcommand drives the asynchronous orchestrator path: the
// build starts as a background job; -watch streams its journal to the
// terminal and the command exits with the deployment's terminal state
// (0 ready, 1 failed, 2 cancelled — Ctrl-C cancels the build).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"xcbc/internal/sim"
	"xcbc/pkg/xcbc"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "deploy" {
		os.Exit(deployCmd(os.Args[2:]))
	}
	clusterName := flag.String("cluster", "littlefe", "cluster: littlefe, marshall, or howard (XCBC path)")
	scheduler := flag.String("scheduler", "torque", "torque, slurm, or sge")
	powerPolicy := flag.String("power", "always-on", "always-on, on-demand, or scheduled")
	flag.Parse()

	d, err := xcbc.NewXCBC(
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithPowerPolicy(xcbc.PowerPolicy(*powerPolicy)),
	).Deploy(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		os.Exit(1)
	}
	eng := d.Engine()
	fmt.Printf("built %s with %s in %v (simulated)\n\n", d.Hardware().Name, *scheduler, d.InstallDuration())

	// Replay a small workload with the user-facing commands.
	var cmds []string
	if *scheduler == "slurm" {
		cmds = []string{
			"sbatch -J md-relax -n 4 -t 60 -u alice relax.sh",
			"sbatch -J blast -n 2 -t 30 -u bob blast.sh",
			"sbatch -J assembly -n 8 -t 120 -u carol trinity.sh",
		}
	} else {
		cmds = []string{
			"qsub -N md-relax -l nodes=2:ppn=2,walltime=01:00:00 -u alice relax.sh",
			"qsub -N blast -l nodes=1:ppn=2,walltime=00:30:00 -u bob blast.sh",
			"qsub -N assembly -l nodes=4:ppn=2,walltime=02:00:00 -u carol trinity.sh",
		}
	}
	for _, cmd := range cmds {
		out, err := d.Exec(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterctl:", err)
			os.Exit(1)
		}
		fmt.Printf("$ %s\n%s\n", cmd, out)
	}
	status := "qstat"
	if *scheduler == "slurm" {
		status = "squeue"
	}
	out, _ := d.Exec(status)
	fmt.Printf("$ %s\n%s\n", status, out)

	// Monitor while the workload runs.
	d.Monitor().Start(eng, time.Minute, 30)
	eng.RunUntil(eng.Now() + sim.Time(30*time.Minute))
	fmt.Print(d.Monitor().Report())

	eng.Run()
	total := d.PowerManager().Finalize()
	fmt.Printf("\nworkload complete at %v; %d jobs finished; energy %.1f Wh (policy %s)\n",
		eng.Now(), len(d.Batch().History()), total, *powerPolicy)
}

// deployCmd runs `clusterctl deploy`: start an asynchronous build, watch
// its journal, exit with the terminal state.
func deployCmd(args []string) int {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	clusterName := fs.String("cluster", "littlefe", "cluster to build")
	scheduler := fs.String("scheduler", "torque", "torque, slurm, or sge")
	nodes := fs.Int("nodes", 0, "override the compute node count (0 = as cataloged)")
	parallelism := fs.Int("parallelism", 1, "compute kickstarts per wave (1 = sequential)")
	retries := fs.Int("retries", 0, "per-node install retries before quarantine")
	watch := fs.Bool("watch", false, "stream build events until the deployment settles")
	fs.Parse(args)

	opts := []xcbc.Option{
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithParallelism(*parallelism),
		xcbc.WithRetries(*retries),
	}
	if *nodes > 0 {
		opts = append(opts, xcbc.WithNodeCount(*nodes))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	h, err := xcbc.NewXCBC(opts...).Start(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl deploy:", err)
		return 1
	}
	go func() {
		<-ctx.Done()
		h.Cancel()
	}()

	if *watch {
		h.Watch(context.Background(), func(ev xcbc.Event) {
			fmt.Printf("  %4d [%-12s] %-14s %s\n", ev.Seq, ev.Stage, ev.Node, ev.Message)
		})
	}

	d, err := h.Wait(context.Background())
	switch h.Status() {
	case xcbc.StateReady:
		fmt.Printf("deployment ready: %s, %d nodes, %d packages in %v (simulated, parallelism %d)\n",
			d.Hardware().Name, d.Hardware().NodeCount(), d.PackagesInstalled(),
			d.InstallDuration(), *parallelism)
		if q := d.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined nodes: %v\n", q)
		}
		return 0
	case xcbc.StateCancelled:
		fmt.Fprintln(os.Stderr, "clusterctl deploy: build cancelled")
		return 2
	default:
		if err == nil {
			err = errors.New(string(h.Status()))
		}
		fmt.Fprintln(os.Stderr, "clusterctl deploy: build failed:", err)
		return 1
	}
}
