// Command clusterctl builds an XCBC cluster, replays a small batch workload
// through the portable command layer, and prints scheduler, monitoring, and
// power reports — a one-command tour of the running system.
//
// Usage:
//
//	clusterctl -cluster littlefe -scheduler torque
//	clusterctl -cluster limulus -power on-demand
//	clusterctl deploy -cluster littlefe -parallelism 8 -watch
//	clusterctl fleet scenarios
//	clusterctl fleet run campus-100 [-seed N] [-trace out.jsonl] [-v]
//	clusterctl campaign run -seeds 64 -workers 8 [-repro-dir DIR]
//	clusterctl scenario validate chaos.json
//
// The fleet subcommand drives the scenario engine locally: provision a
// whole fleet of simulated clusters, inject seeded chaos, run day-2
// operations, and check invariants, emitting a deterministic JSONL trace.
// The campaign subcommand sweeps generated scenarios across many seeds and
// shrinks any failure to a minimal repro; scenario validate checks a
// script without running it.
//
// The deploy subcommand drives the asynchronous orchestrator path: the
// build starts as a background job; -watch streams its journal to the
// terminal and the command exits with the deployment's terminal state
// (0 ready, 1 failed, 2 cancelled — Ctrl-C cancels the build).
//
// The day-2 subcommands operate a cluster through a control-plane server
// (repo-server, or anything serving pkg/xcbc/api) against the
// /api/v1/clusters routes:
//
//	clusterctl jobs submit -server URL -id d1 -name relax -user alice -cores 4 -walltime 1h
//	clusterctl jobs ls     -server URL -id d1 [-state running]
//	clusterctl jobs cancel -server URL -id d1 -job 3
//	clusterctl metrics     -server URL -id d1
//	clusterctl validate    -server URL -id d1
//	clusterctl advance     -server URL -id d1 -by 30m
//	clusterctl load        -server URL [-n 1000] [-workers 8] [-seed 1]
//
// Servers running with tenants configured require an API key on every
// request; pass it with -api-key (or $CLUSTERCTL_API_KEY). The load
// subcommand replays a deterministic seeded read-mostly request mix
// through a bounded worker pool (internal/loadgen) and prints wrk-style
// throughput and latency quantiles; it exits 1 if any response falls
// outside 2xx/429.
//
// When the target deployment is still pending or building the server
// answers 409 Conflict; clusterctl prints the state with a wait hint and
// exits 2 (retryable). Everything else — a wrong request, and a build
// that settled failed or cancelled (422: waiting will never help) —
// exits 1.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"xcbc/internal/sim"
	"xcbc/pkg/xcbc"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "deploy":
			os.Exit(deployCmd(os.Args[2:]))
		case "fleet":
			os.Exit(fleetCmd(os.Args[2:], os.Stdout, os.Stderr))
		case "campaign":
			os.Exit(campaignCmd(os.Args[2:], os.Stdout, os.Stderr))
		case "scenario":
			os.Exit(scenarioCmd(os.Args[2:], os.Stdout, os.Stderr))
		case "jobs":
			os.Exit(jobsCmd(os.Args[2:]))
		case "metrics":
			os.Exit(metricsCmd(os.Args[2:]))
		case "validate":
			os.Exit(validateCmd(os.Args[2:]))
		case "advance":
			os.Exit(advanceCmd(os.Args[2:]))
		case "load":
			os.Exit(loadCmd(os.Args[2:], os.Stdout, os.Stderr))
		}
	}
	clusterName := flag.String("cluster", "littlefe", "cluster: littlefe, marshall, or howard (XCBC path)")
	scheduler := flag.String("scheduler", "torque", "torque, slurm, or sge")
	powerPolicy := flag.String("power", "always-on", "always-on, on-demand, or scheduled")
	flag.Parse()

	d, err := xcbc.NewXCBC(
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithPowerPolicy(xcbc.PowerPolicy(*powerPolicy)),
	).Deploy(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		os.Exit(1)
	}
	eng := d.Engine()
	fmt.Printf("built %s with %s in %v (simulated)\n\n", d.Hardware().Name, *scheduler, d.InstallDuration())

	// Replay a small workload with the user-facing commands.
	var cmds []string
	if *scheduler == "slurm" {
		cmds = []string{
			"sbatch -J md-relax -n 4 -t 60 -u alice relax.sh",
			"sbatch -J blast -n 2 -t 30 -u bob blast.sh",
			"sbatch -J assembly -n 8 -t 120 -u carol trinity.sh",
		}
	} else {
		cmds = []string{
			"qsub -N md-relax -l nodes=2:ppn=2,walltime=01:00:00 -u alice relax.sh",
			"qsub -N blast -l nodes=1:ppn=2,walltime=00:30:00 -u bob blast.sh",
			"qsub -N assembly -l nodes=4:ppn=2,walltime=02:00:00 -u carol trinity.sh",
		}
	}
	for _, cmd := range cmds {
		out, err := d.Exec(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterctl:", err)
			os.Exit(1)
		}
		fmt.Printf("$ %s\n%s\n", cmd, out)
	}
	status := "qstat"
	if *scheduler == "slurm" {
		status = "squeue"
	}
	out, _ := d.Exec(status)
	fmt.Printf("$ %s\n%s\n", status, out)

	// Monitor while the workload runs.
	d.Monitor().Start(eng, time.Minute, 30)
	eng.RunUntil(eng.Now() + sim.Time(30*time.Minute))
	fmt.Print(d.Monitor().Report())

	eng.Run()
	total := d.PowerManager().Finalize()
	fmt.Printf("\nworkload complete at %v; %d jobs finished; energy %.1f Wh (policy %s)\n",
		eng.Now(), len(d.Batch().History()), total, *powerPolicy)
}

// deployCmd runs `clusterctl deploy`: start an asynchronous build, watch
// its journal, exit with the terminal state.
func deployCmd(args []string) int {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	clusterName := fs.String("cluster", "littlefe", "cluster to build")
	scheduler := fs.String("scheduler", "torque", "torque, slurm, or sge")
	nodes := fs.Int("nodes", 0, "override the compute node count (0 = as cataloged)")
	parallelism := fs.Int("parallelism", 1, "compute kickstarts per wave (1 = sequential)")
	retries := fs.Int("retries", 0, "per-node install retries before quarantine")
	watch := fs.Bool("watch", false, "stream build events until the deployment settles")
	fs.Parse(args)

	opts := []xcbc.Option{
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
		xcbc.WithParallelism(*parallelism),
		xcbc.WithRetries(*retries),
	}
	if *nodes > 0 {
		opts = append(opts, xcbc.WithNodeCount(*nodes))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	h, err := xcbc.NewXCBC(opts...).Start(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl deploy:", err)
		return 1
	}
	go func() {
		<-ctx.Done()
		h.Cancel()
	}()

	if *watch {
		h.Watch(context.Background(), func(ev xcbc.Event) {
			fmt.Printf("  %4d [%-12s] %-14s %s\n", ev.Seq, ev.Stage, ev.Node, ev.Message)
		})
	}

	d, err := h.Wait(context.Background())
	switch h.Status() {
	case xcbc.StateReady:
		fmt.Printf("deployment ready: %s, %d nodes, %d packages in %v (simulated, parallelism %d)\n",
			d.Hardware().Name, d.Hardware().NodeCount(), d.PackagesInstalled(),
			d.InstallDuration(), *parallelism)
		if q := d.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined nodes: %v\n", q)
		}
		return 0
	case xcbc.StateCancelled:
		fmt.Fprintln(os.Stderr, "clusterctl deploy: build cancelled")
		return 2
	default:
		if err == nil {
			err = errors.New(string(h.Status()))
		}
		fmt.Fprintln(os.Stderr, "clusterctl deploy: build failed:", err)
		return 1
	}
}

// --- day-2 REST client -------------------------------------------------
//
// The subcommands below talk to a control-plane server's /api/v1/clusters
// routes. They share clientFlags and the exit-code contract: 0 success,
// 1 request or server error, 2 the deployment is not ready yet (retry
// after the build settles).

// apiKey is the bearer token sent with every control-plane request, for
// servers running with tenants configured. Set by -api-key on any remote
// subcommand; defaults to $CLUSTERCTL_API_KEY so scripts need not embed
// credentials in argv.
var apiKey string

// keyFlag registers -api-key into the shared apiKey variable.
func keyFlag(fs *flag.FlagSet) {
	fs.StringVar(&apiKey, "api-key", os.Getenv("CLUSTERCTL_API_KEY"),
		"tenant API key (default $CLUSTERCTL_API_KEY; empty for open-mode servers)")
}

// clientFlags registers the flags every day-2 subcommand shares.
func clientFlags(fs *flag.FlagSet) (server, id *string) {
	server = fs.String("server", "http://localhost:8080", "control-plane base URL")
	id = fs.String("id", "", "cluster ID (the deployment ID, e.g. d1)")
	keyFlag(fs)
	return server, id
}

// apiCall performs one JSON request. A 2xx decodes into out (when non-nil)
// and returns exit 0. A 409 whose body carries a deployment state prints
// the not-ready hint and returns exit 2; anything else prints the server's
// error and returns exit 1.
func apiCall(method, url string, body any, out any) int {
	var reader io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clusterctl:", err)
			return 1
		}
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		return 1
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		return 1
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clusterctl:", err)
		return 1
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				fmt.Fprintln(os.Stderr, "clusterctl: bad response:", err)
				return 1
			}
		}
		return 0
	}
	var apiErr struct {
		Error string `json:"error"`
		State string `json:"state"`
		Hint  string `json:"hint"`
	}
	_ = json.Unmarshal(raw, &apiErr)
	if resp.StatusCode == http.StatusConflict && apiErr.State != "" {
		fmt.Fprintf(os.Stderr, "clusterctl: deployment is not ready (state %q)\n", apiErr.State)
		if apiErr.Hint != "" {
			fmt.Fprintln(os.Stderr, "clusterctl: hint:", apiErr.Hint)
		} else {
			fmt.Fprintln(os.Stderr, "clusterctl: hint: wait for the build to reach \"ready\" (clusterctl deploy -watch, or poll /api/v1/deployments)")
		}
		return 2
	}
	msg := apiErr.Error
	if msg == "" {
		msg = strings.TrimSpace(string(raw))
	}
	fmt.Fprintf(os.Stderr, "clusterctl: %s %s: %s (HTTP %d)\n", method, url, msg, resp.StatusCode)
	return 1
}

// requireID validates the shared -id flag.
func requireID(id string) bool {
	if id == "" {
		fmt.Fprintln(os.Stderr, "clusterctl: -id is required (the deployment ID, e.g. d1)")
		return false
	}
	return true
}

// jobJSON mirrors the API's job shape.
type jobJSON struct {
	ID        int      `json:"id"`
	Name      string   `json:"name"`
	User      string   `json:"user"`
	Cores     int      `json:"cores"`
	State     string   `json:"state"`
	Walltime  string   `json:"walltime"`
	Submitted string   `json:"submitted"`
	Started   string   `json:"started"`
	Ended     string   `json:"ended"`
	Nodes     []string `json:"nodes"`
}

func printJob(j jobJSON) {
	fmt.Printf("%-4d %-14s %-10s %-6d %-10s %-10s %v\n",
		j.ID, j.Name, j.User, j.Cores, j.State, j.Walltime, j.Nodes)
}

// jobsCmd dispatches `clusterctl jobs submit|ls|cancel`.
func jobsCmd(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "clusterctl jobs: need a subcommand: submit, ls, or cancel")
		return 1
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		fs := flag.NewFlagSet("jobs submit", flag.ExitOnError)
		server, id := clientFlags(fs)
		name := fs.String("name", "job", "job name")
		user := fs.String("user", "nobody", "submitting user")
		cores := fs.Int("cores", 1, "cores requested")
		walltime := fs.Duration("walltime", time.Hour, "requested walltime limit")
		runtime := fs.Duration("runtime", 0, "actual simulated runtime (0 = half the walltime)")
		script := fs.String("script", "", "script label")
		fs.Parse(rest)
		if !requireID(*id) {
			return 1
		}
		body := map[string]any{
			"name": *name, "user": *user, "cores": *cores,
			"walltime": walltime.String(), "script": *script,
		}
		if *runtime > 0 {
			body["runtime"] = runtime.String()
		}
		var job jobJSON
		if code := apiCall("POST", *server+"/api/v1/clusters/"+*id+"/jobs", body, &job); code != 0 {
			return code
		}
		fmt.Printf("submitted job %d (%s) — state %s\n", job.ID, job.Name, job.State)
		return 0
	case "ls":
		fs := flag.NewFlagSet("jobs ls", flag.ExitOnError)
		server, id := clientFlags(fs)
		state := fs.String("state", "", "filter by state (queued, running, completed, cancelled, timeout)")
		fs.Parse(rest)
		if !requireID(*id) {
			return 1
		}
		url := *server + "/api/v1/clusters/" + *id + "/jobs"
		if *state != "" {
			url += "?state=" + *state
		}
		var list struct {
			Count int       `json:"count"`
			Jobs  []jobJSON `json:"jobs"`
		}
		if code := apiCall("GET", url, nil, &list); code != 0 {
			return code
		}
		fmt.Printf("%-4s %-14s %-10s %-6s %-10s %-10s %s\n",
			"ID", "NAME", "USER", "CORES", "STATE", "WALLTIME", "NODES")
		for _, j := range list.Jobs {
			printJob(j)
		}
		return 0
	case "cancel":
		fs := flag.NewFlagSet("jobs cancel", flag.ExitOnError)
		server, id := clientFlags(fs)
		job := fs.Int("job", 0, "job ID to cancel")
		fs.Parse(rest)
		if !requireID(*id) {
			return 1
		}
		if *job <= 0 {
			fmt.Fprintln(os.Stderr, "clusterctl jobs cancel: -job must be a positive job ID")
			return 1
		}
		var j jobJSON
		if code := apiCall("DELETE", fmt.Sprintf("%s/api/v1/clusters/%s/jobs/%d", *server, *id, *job), nil, &j); code != 0 {
			return code
		}
		fmt.Printf("cancelled job %d — state %s\n", j.ID, j.State)
		return 0
	}
	fmt.Fprintf(os.Stderr, "clusterctl jobs: unknown subcommand %q (use submit, ls, or cancel)\n", sub)
	return 1
}

// metricsCmd prints the cluster's monitoring snapshot.
func metricsCmd(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	server, id := clientFlags(fs)
	fs.Parse(args)
	if !requireID(*id) {
		return 1
	}
	var m struct {
		At           string   `json:"at"`
		ClusterLoad  float64  `json:"cluster_load"`
		ActiveAlerts []string `json:"active_alerts"`
		Nodes        []struct {
			Host       string  `json:"host"`
			Load       float64 `json:"load"`
			PowerWatts float64 `json:"power_watts"`
			Cores      int     `json:"cores"`
		} `json:"nodes"`
	}
	if code := apiCall("GET", *server+"/api/v1/clusters/"+*id+"/metrics", nil, &m); code != 0 {
		return code
	}
	fmt.Printf("cluster %s at %s: %d hosts reporting, mean load %.2f\n", *id, m.At, len(m.Nodes), m.ClusterLoad)
	for _, n := range m.Nodes {
		fmt.Printf("  %-16s load %.2f  %6.1f W  %d cores\n", n.Host, n.Load, n.PowerWatts, n.Cores)
	}
	if len(m.ActiveAlerts) > 0 {
		fmt.Printf("active alerts: %v\n", m.ActiveAlerts)
	}
	return 0
}

// validateCmd runs the HPL acceptance check.
func validateCmd(args []string) int {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	server, id := clientFlags(fs)
	fs.Parse(args)
	if !requireID(*id) {
		return 1
	}
	var v struct {
		N             int     `json:"n"`
		RpeakGF       float64 `json:"rpeak_gflops"`
		RmaxGF        float64 `json:"rmax_gflops"`
		Efficiency    float64 `json:"efficiency"`
		SmokeRun      bool    `json:"smoke_run"`
		SmokeN        int     `json:"smoke_n"`
		SmokeGFLOPS   float64 `json:"smoke_gflops"`
		SmokeResidual float64 `json:"smoke_residual"`
		SmokePass     bool    `json:"smoke_pass"`
	}
	if code := apiCall("POST", *server+"/api/v1/clusters/"+*id+"/validate", map[string]any{}, &v); code != 0 {
		return code
	}
	fmt.Printf("HPL model: N=%d Rpeak=%.1f GF Rmax=%.1f GF (%.1f%%)\n",
		v.N, v.RpeakGF, v.RmaxGF, 100*v.Efficiency)
	if v.SmokeRun {
		status := "PASSED"
		if !v.SmokePass {
			status = "FAILED"
		}
		fmt.Printf("measured smoke solve: N=%d %.2f GFLOPS, residual %.3g (%s)\n",
			v.SmokeN, v.SmokeGFLOPS, v.SmokeResidual, status)
	}
	if v.SmokeRun && !v.SmokePass {
		return 1
	}
	return 0
}

// advanceCmd moves the cluster's virtual clock forward.
func advanceCmd(args []string) int {
	fs := flag.NewFlagSet("advance", flag.ExitOnError)
	server, id := clientFlags(fs)
	by := fs.Duration("by", 30*time.Minute, "how much virtual time to advance")
	fs.Parse(args)
	if !requireID(*id) {
		return 1
	}
	var resp struct {
		VirtualNow string `json:"virtual_now"`
	}
	if code := apiCall("POST", *server+"/api/v1/clusters/"+*id+"/advance",
		map[string]string{"duration": by.String()}, &resp); code != 0 {
		return code
	}
	fmt.Printf("virtual time is now %s\n", resp.VirtualNow)
	return 0
}
