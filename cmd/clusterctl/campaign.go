package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"

	"xcbc/pkg/xcbc"
)

// campaignCmd dispatches `clusterctl campaign run`: sweep N generated
// scenarios locally through the SDK, checking the full metamorphic battery
// (script asserts, trace determinism, conservation checks, WAL recovery
// equivalence) and shrinking any failure to a minimal repro script.
//
//	clusterctl campaign run -seeds 64 -workers 8
//	clusterctl campaign run -seeds 32 -start-seed 1000 -repro-dir ./repros -v
//
// Exit codes: 0 every seed passed, 1 the sweep ran and found failures,
// 2 the campaign itself was unusable (bad flags, cancelled mid-sweep).
func campaignCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "clusterctl campaign: need a subcommand: run")
		return 2
	}
	sub, rest := args[0], args[1:]
	if sub != "run" {
		fmt.Fprintf(stderr, "clusterctl campaign: unknown subcommand %q (use run)\n", sub)
		return 2
	}
	fs := flag.NewFlagSet("campaign run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int("seeds", 32, "how many consecutive seeds to sweep")
	startSeed := fs.Int64("start-seed", 0, "first seed (shard a seed space across campaigns)")
	workers := fs.Int("workers", 0, "concurrent seed runs (0 = min(8, GOMAXPROCS))")
	shrinkBudget := fs.Int("shrink-budget", 0, "shrink evaluations per failure (0 = default)")
	reproDir := fs.String("repro-dir", "", "write each failure's minimized repro script into this directory")
	verbose := fs.Bool("v", false, "print every seed's outcome as it lands")
	var prof profileFlags
	prof.register(fs)
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "clusterctl campaign run: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	spec := xcbc.CampaignSpec{
		Seeds: *seeds, StartSeed: *startSeed,
		Workers: *workers, ShrinkBudget: *shrinkBudget,
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(stderr, "clusterctl campaign run:", err)
		return 2
	}
	if *reproDir != "" {
		if err := os.MkdirAll(*reproDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "clusterctl campaign run:", err)
			return 2
		}
	}

	stopProf, perr := prof.start()
	if perr != nil {
		fmt.Fprintln(stderr, "clusterctl campaign run:", perr)
		return 2
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Fprintf(stdout, "sweeping %d seeds from %d (each: 2 runs + trace battery + recovery check)\n",
		spec.Seeds, spec.StartSeed)
	res, err := xcbc.RunCampaignObserved(ctx, spec, func(out xcbc.CampaignSeedOutcome) {
		if *verbose || out.State != xcbc.CampaignSeedPassed {
			fmt.Fprintf(stdout, "  seed %-6d %s\n", out.Seed, out.State)
		}
		for _, v := range out.Violations {
			fmt.Fprintln(stdout, "    -", v)
		}
	})
	if res == nil {
		fmt.Fprintln(stderr, "clusterctl campaign run:", err)
		return 2
	}

	for _, f := range res.Failures {
		fmt.Fprintf(stdout, "seed %d shrank to %d phases in %d evaluations\n",
			f.Seed, f.ReproPhases, f.ShrinkEvals)
		if *reproDir != "" {
			path := filepath.Join(*reproDir, fmt.Sprintf("repro-seed-%d.json", f.Seed))
			if werr := os.WriteFile(path, f.Repro, 0o644); werr != nil {
				fmt.Fprintln(stderr, "clusterctl campaign run: writing repro:", werr)
			} else {
				fmt.Fprintf(stdout, "  repro written to %s (replay: clusterctl fleet run %s)\n", path, path)
			}
		} else {
			fmt.Fprintf(stdout, "  repro:\n%s\n", f.Repro)
		}
	}
	fmt.Fprintf(stdout, "campaign: %d/%d seeds passed, %d failed, %d errored\n",
		res.Passed, res.Seeds, res.Failed, res.Errors)
	switch {
	case err != nil:
		fmt.Fprintln(stderr, "clusterctl campaign run: sweep interrupted:", err)
		return 2
	case res.Failed > 0:
		return 1
	case res.Errors > 0:
		fmt.Fprintln(stderr, "clusterctl campaign run: some seeds did not complete")
		return 2
	}
	return 0
}

// scenarioCmd dispatches `clusterctl scenario validate <file.json>`: parse
// and validate a scenario script without running it. Exit codes: 0 the
// script is valid, 1 it is not (the problem is printed), 2 usage errors.
func scenarioCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "clusterctl scenario: need a subcommand: validate")
		return 2
	}
	sub, rest := args[0], args[1:]
	if sub != "validate" {
		fmt.Fprintf(stderr, "clusterctl scenario: unknown subcommand %q (use validate)\n", sub)
		return 2
	}
	if len(rest) != 1 {
		fmt.Fprintln(stderr, "clusterctl scenario validate: need exactly one scenario JSON file")
		return 2
	}
	data, err := os.ReadFile(rest[0])
	if err != nil {
		fmt.Fprintln(stderr, "clusterctl scenario validate:", err)
		return 1
	}
	sc, err := xcbc.LoadScenario(data)
	if err != nil {
		fmt.Fprintln(stderr, "clusterctl scenario validate:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: valid (%d members, %d phases, seed %d)\n",
		rest[0], sc.Members(), sc.Phases(), sc.Seed())
	return 0
}
