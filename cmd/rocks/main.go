// Command rocks is the administrator's console for a simulated XCBC
// cluster: it builds the cluster, then executes a semicolon-separated
// script of Rocks-flavoured admin commands — the hands-on loop of the
// paper's sysadmin curriculum.
//
// Usage:
//
//	rocks -script "list host; add user alice research; sync 411; verify"
//	rocks -script "drain compute-0-2; reinstall compute-0-2; undrain compute-0-2; verify"
//
// Commands:
//
//	list host                 print the frontend database
//	list roll                 print the distribution's rolls
//	add user <name> <group>   create an account in the 411 service
//	sync 411                  push login info to all computes
//	set attr <key> <value>    set a global attribute
//	drain <node>              take a node out of scheduling
//	undrain <node>            return a node to scheduling
//	reinstall <node>          wipe and re-kickstart a node
//	fail <node>               simulate a node failure (jobs requeue)
//	repair <node>             bring a failed node back
//	verify                    run the cluster health checker
//	report                    print monitoring + accounting reports
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"xcbc/internal/rocks"
	"xcbc/internal/verify"
	"xcbc/pkg/xcbc"
)

func main() {
	clusterName := flag.String("cluster", "littlefe", "littlefe, marshall, or howard")
	scheduler := flag.String("scheduler", "torque", "torque, slurm, or sge")
	script := flag.String("script", "list host", "semicolon-separated admin commands")
	flag.Parse()

	d, err := xcbc.NewXCBC(
		xcbc.WithCluster(*clusterName),
		xcbc.WithScheduler(*scheduler),
	).Deploy(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocks:", err)
		os.Exit(1)
	}
	users := rocks.New411()
	fmt.Printf("# %s built (%s); executing script\n", d.Hardware().Name, *scheduler)

	for _, raw := range strings.Split(*script, ";") {
		cmd := strings.TrimSpace(raw)
		if cmd == "" {
			continue
		}
		fmt.Printf("\nrocks> %s\n", cmd)
		if err := execute(d, users, cmd); err != nil {
			fmt.Fprintln(os.Stderr, "rocks:", err)
			os.Exit(1)
		}
	}
	d.Engine().Run()
}

func execute(d *xcbc.Deployment, users *rocks.Service411, cmd string) error {
	f := strings.Fields(cmd)
	switch {
	case len(f) == 2 && f[0] == "list" && f[1] == "host":
		fmt.Print(d.Installer().DB.ListHostReport())
	case len(f) == 2 && f[0] == "list" && f[1] == "roll":
		for _, name := range d.Installer().DB.Distribution().RollNames() {
			fmt.Println(name)
		}
	case len(f) == 4 && f[0] == "add" && f[1] == "user":
		u, err := users.AddUser(f[2], f[3])
		if err != nil {
			return err
		}
		fmt.Printf("created %s (uid %d, home %s)\n", u.Name, u.UID, u.Home)
	case len(f) == 2 && f[0] == "sync" && f[1] == "411":
		var names []string
		for _, n := range d.Hardware().Computes {
			names = append(names, n.Name)
		}
		for _, n := range names {
			snap := users.Pull(n)
			if !snap.Verify() {
				return fmt.Errorf("411 snapshot failed verification on %s", n)
			}
		}
		fmt.Printf("411 generation %d pushed to %d nodes (stale now: %d)\n",
			users.Generation(), len(names), len(users.StaleNodes(names)))
	case len(f) == 4 && f[0] == "set" && f[1] == "attr":
		d.Installer().DB.SetGlobalAttr(f[2], f[3])
		fmt.Printf("attr %s = %s\n", f[2], f[3])
	case len(f) == 2 && f[0] == "drain":
		if err := d.Batch().Drain(f[1]); err != nil {
			return err
		}
		fmt.Printf("%s drained\n", f[1])
	case len(f) == 2 && f[0] == "undrain":
		if err := d.Batch().Undrain(f[1]); err != nil {
			return err
		}
		fmt.Printf("%s back in service\n", f[1])
	case len(f) == 2 && f[0] == "reinstall":
		r, err := d.Installer().Reinstall(d.Engine(), f[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s reinstalled: %d packages in %v\n", r.Node, r.Packages, r.Duration)
	case len(f) == 2 && f[0] == "fail":
		if err := d.Batch().NodeFail(f[1]); err != nil {
			return err
		}
		fmt.Printf("%s failed; %d job(s) requeued\n", f[1], d.Batch().RequeuedCount())
	case len(f) == 2 && f[0] == "repair":
		if err := d.Batch().NodeRepair(f[1]); err != nil {
			return err
		}
		fmt.Printf("%s repaired\n", f[1])
	case len(f) == 1 && f[0] == "verify":
		svc := []string{"gmond"}
		feSvc := []string{"gmetad"}
		switch d.Scheduler() {
		case "torque":
			svc = append(svc, "pbs_mom")
			feSvc = append(feSvc, "pbs_server", "maui")
		case "slurm":
			svc = append(svc, "slurmd")
			feSvc = append(feSvc, "slurmctld")
		case "sge":
			svc = append(svc, "sge_execd")
			feSvc = append(feSvc, "sge_qmaster")
		}
		chk := &verify.Checker{Cluster: d.Hardware(), DB: d.Installer().DB,
			ComputeServices: svc, FrontendServices: feSvc}
		fmt.Print(chk.Run().Summary())
	case len(f) == 1 && f[0] == "report":
		d.Monitor().Poll(d.Engine().Now())
		fmt.Print(d.Monitor().Report())
		fmt.Print(d.Batch().AccountingReport())
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
