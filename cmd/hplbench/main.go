// Command hplbench runs the Linpack workload two ways: the analytic
// Rpeak/Rmax model for the simulated machines of Tables 3-5, and a real
// (small) LU solve on the host to demonstrate the kernel and its residual
// validation.
//
// Usage:
//
//	hplbench -cluster littlefe            # model the paper's machine
//	hplbench -run -n 1500 -nb 64          # actually factor a matrix here
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"xcbc/internal/cluster"
	"xcbc/internal/hpl"
)

func main() {
	clusterName := flag.String("cluster", "littlefe", "cluster to model: littlefe, littlefe-original, limulus, marshall, montana, kansas, pbarc")
	run := flag.Bool("run", false, "run a real LU solve on this host instead of modelling")
	n := flag.Int("n", 1000, "problem size for -run")
	nb := flag.Int("nb", 64, "block size for -run")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for -run")
	memFrac := flag.Float64("mem", 0.8, "memory fraction for the modelled problem size")
	flag.Parse()

	if *run {
		res, err := hpl.Run(*n, *nb, *workers, 42, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hplbench:", err)
			os.Exit(1)
		}
		fmt.Println(res)
		if !res.Pass {
			os.Exit(1)
		}
		return
	}

	builders := map[string]func() *cluster.Cluster{
		"littlefe":          cluster.NewLittleFe,
		"littlefe-original": cluster.NewLittleFeOriginal,
		"limulus":           cluster.NewLimulusHPC200,
		"marshall":          cluster.NewMarshall,
		"montana":           cluster.NewMontanaState,
		"kansas":            cluster.NewKansas,
		"pbarc":             cluster.NewPBARC,
	}
	build, ok := builders[*clusterName]
	if !ok {
		fmt.Fprintf(os.Stderr, "hplbench: unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	c := build()
	size := hpl.ProblemSize(c, *memFrac)
	res := hpl.Model(c, size, hpl.ModelParams{})
	fmt.Printf("%s (%s interconnect, %d nodes, %d cores)\n", c.Name, c.Network.Type, c.NodeCount(), c.Cores())
	fmt.Printf("  %s\n", res)
	fmt.Printf("  modelled solve time: %v\n", res.Elapsed)
	if c.CostUSD > 0 {
		fmt.Printf("  $/GFLOPS: %.2f at Rpeak, %.2f at Rmax (cost $%.0f)\n",
			hpl.PricePerf(c.CostUSD, res.RpeakGF), hpl.PricePerf(c.CostUSD, res.RmaxGF), c.CostUSD)
	}
}
